//===- SmtTest.cpp - Z3 wrapper, bounded check, induction tests -----------===//

#include "smt/BoundedCheck.h"
#include "smt/Induction.h"
#include "smt/Solver.h"
#include "ast/Simplify.h"

#include "eval/Interp.h"
#include "frontend/Elaborate.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

TEST(SolverTest, SatAndModel) {
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)});
  SmtModel M;
  ASSERT_EQ(quickCheck({A}, 1000, &M), SmtResult::Sat);
  ValuePtr V = M.lookup(X->Id);
  ASSERT_NE(V, nullptr);
  EXPECT_GT(V->getInt(), 3);
}

TEST(SolverTest, Unsat) {
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)});
  TermPtr B = mkOp(OpKind::Lt, {mkVar(X), mkIntLit(2)});
  EXPECT_EQ(quickCheck({A, B}, 1000), SmtResult::Unsat);
}

TEST(SolverTest, ValidityCheck) {
  VarPtr X = freshVar("x", Type::intTy());
  // max(x, 0) >= x is valid.
  TermPtr F = mkOp(OpKind::Ge,
                   {mkOp(OpKind::Max, {mkVar(X), mkIntLit(0)}), mkVar(X)});
  EXPECT_EQ(checkValidity(F, 1000), SmtResult::Unsat);
  // x >= 0 is not.
  SmtModel Counter;
  TermPtr G = mkOp(OpKind::Ge, {mkVar(X), mkIntLit(0)});
  EXPECT_EQ(checkValidity(G, 1000, &Counter), SmtResult::Sat);
  EXPECT_LT(Counter.lookup(X->Id)->getInt(), 0);
}

TEST(SolverTest, TupleScalarization) {
  TypePtr TupTy = Type::tupleTy({Type::intTy(), Type::boolTy()});
  VarPtr P = freshVar("p", TupTy);
  // p = (7, true)
  TermPtr A = mkEq(mkVar(P), mkTuple({mkIntLit(7), mkBoolLit(true)}));
  SmtModel M;
  ASSERT_EQ(quickCheck({A}, 1000, &M), SmtResult::Sat);
  ValuePtr V = M.lookup(P->Id);
  ASSERT_TRUE(V->isTuple());
  EXPECT_EQ(V->getElems()[0]->getInt(), 7);
  EXPECT_TRUE(V->getElems()[1]->getBool());
  // Projections work too.
  TermPtr B = mkOp(OpKind::Gt, {mkProj(mkVar(P), 0), mkIntLit(100)});
  EXPECT_EQ(quickCheck({A, B}, 1000), SmtResult::Unsat);
}

TEST(SolverTest, UnknownsAsUninterpretedFunctions) {
  VarPtr X = freshVar("x", Type::intTy());
  // u(1) = 2 and u(1) = 3 is unsat (functional consistency).
  TermPtr U1 = mkUnknown("u", Type::intTy(), {mkIntLit(1)});
  EXPECT_EQ(quickCheck({mkEq(U1, mkIntLit(2)), mkEq(U1, mkIntLit(3))}, 1000),
            SmtResult::Unsat);
  // u(x) = x + 1 at x = 5 is sat and we can read u(5) back.
  SmtQuery Q;
  Q.add(mkEq(mkVar(X), mkIntLit(5)));
  TermPtr UX = mkUnknown("u", Type::intTy(), {mkVar(X)});
  Q.add(mkEq(UX, mkAdd(mkVar(X), mkIntLit(1))));
  Q.requestValue(UX);
  std::vector<ValuePtr> Vals;
  ASSERT_EQ(Q.checkSat(1000, nullptr, &Vals), SmtResult::Sat);
  ASSERT_EQ(Vals.size(), 1u);
  EXPECT_EQ(Vals[0]->getInt(), 6);
}

TEST(SolverTest, EuclideanDivModAgreesWithSimplifier) {
  for (long long A = -5; A <= 5; ++A)
    for (long long B : {-3LL, 2LL}) {
      VarPtr Q = freshVar("q", Type::intTy());
      TermPtr Formula = mkAndList(
          {mkEq(mkVar(Q), mkOp(OpKind::Div, {mkIntLit(A), mkIntLit(B)}))});
      // The simplifier folds the division; Z3 must agree.
      SmtModel M;
      // Build an unfolded version so Z3 actually computes it.
      SmtQuery Query;
      VarPtr Qa = freshVar("qa", Type::intTy());
      Query.add(mkEq(mkVar(Qa), mkOp(OpKind::Div, {mkIntLit(A), mkIntLit(B)})));
      SmtModel M2;
      ASSERT_EQ(Query.checkSat(1000, &M2), SmtResult::Sat);
      EXPECT_EQ(M2.lookup(Qa->Id)->getInt(), euclidDiv(A, B)) << A << "/" << B;
    }
}

struct BoundedFixture : public ::testing::Test {
  void SetUp() override { Prob = loadProblem(se2gis_tests::kMinSortedSrc); }
  Problem Prob;
};

TEST_F(BoundedFixture, FindsSortedListWithGivenMin) {
  // Exists a sorted list l with lmin(l) = 5 and head(l) = 5.
  VarPtr L = freshVar("l", Type::dataTy(Prob.Theta));
  TermPtr F = mkAndList(
      {mkCall("sorted", Type::boolTy(), {mkVar(L)}),
       mkEq(mkCall("lmin", Type::intTy(), {mkVar(L)}), mkIntLit(5))});
  auto W = boundedSat(*Prob.Prog, F, {});
  ASSERT_TRUE(W.has_value());
  ValuePtr LV = W->lookupData(L->Id);
  ASSERT_NE(LV, nullptr);
  Interpreter I(*Prob.Prog);
  EXPECT_TRUE(I.call("sorted", {LV})->getBool());
  EXPECT_EQ(I.call("lmin", {LV})->getInt(), 5);
}

TEST_F(BoundedFixture, ReportsNoneForUnsatisfiable) {
  // No list has lmin(l) < head(l) when sorted (head is the min).
  VarPtr L = freshVar("l", Type::dataTy(Prob.Theta));
  TermPtr F = mkAndList(
      {mkCall("sorted", Type::boolTy(), {mkVar(L)}),
       mkOp(OpKind::Lt, {mkCall("lmin", Type::intTy(), {mkVar(L)}),
                         mkCall("head", Type::intTy(), {mkVar(L)})})});
  BoundedOptions Opts;
  Opts.MaxShapesPerVar = 6;
  EXPECT_FALSE(boundedSat(*Prob.Prog, F, Opts).has_value());
}

TEST_F(BoundedFixture, ScalarOnlyFormula) {
  VarPtr X = freshVar("x", Type::intTy());
  auto W = boundedSat(*Prob.Prog, mkEq(mkVar(X), mkIntLit(9)), {});
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(W->Scalars.lookup(X->Id)->getInt(), 9);
}

struct InductionFixture : public ::testing::Test {
  void SetUp() override { Prob = loadProblem(se2gis_tests::kMinSortedSrc); }
  Problem Prob;
};

TEST(AbstractCallsTest, ConsistentNaming) {
  VarPtr L = freshVar("l", Type::intTy()); // type irrelevant here
  TermPtr C1 = mkCall("f", Type::intTy(), {mkVar(L)});
  TermPtr C2 = mkCall("f", Type::intTy(), {mkVar(L)});
  TermPtr C3 = mkCall("g", Type::intTy(), {mkVar(L)});
  std::vector<std::pair<TermPtr, VarPtr>> Memo;
  TermPtr R = abstractCalls(mkAdd(C1, mkAdd(C2, C3)), Memo);
  EXPECT_EQ(Memo.size(), 2u);
  // c1 and c2 map to the same variable.
  EXPECT_TRUE(termEquals(R->getArg(0), R->getArg(1)->getArg(0)));
}

TEST_F(InductionFixture, ProvesHeadOfSortedIsMin) {
  // forall l: sorted(l) => head(l) = lmin(l).   (Needs induction.)
  VarPtr L = freshVar("l", Type::dataTy(Prob.Theta));
  TermPtr Goal = mkOp(
      OpKind::Implies,
      {mkCall("sorted", Type::boolTy(), {mkVar(L)}),
       mkEq(mkCall("head", Type::intTy(), {mkVar(L)}),
            mkCall("lmin", Type::intTy(), {mkVar(L)}))});
  EXPECT_TRUE(proveByInduction(*Prob.Prog, Goal));
}

TEST_F(InductionFixture, DoesNotProveFalseGoal) {
  // forall l: head(l) = lmin(l) without sortedness is false.
  VarPtr L = freshVar("l", Type::dataTy(Prob.Theta));
  TermPtr Goal = mkEq(mkCall("head", Type::intTy(), {mkVar(L)}),
                      mkCall("lmin", Type::intTy(), {mkVar(L)}));
  EXPECT_FALSE(proveByInduction(*Prob.Prog, Goal));
}

TEST_F(InductionFixture, ScalarGoalWithoutDataVars) {
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr Valid = mkOp(
      OpKind::Ge, {mkOp(OpKind::Max, {mkVar(X), mkIntLit(0)}), mkVar(X)});
  EXPECT_TRUE(proveByInduction(*Prob.Prog, Valid));
  EXPECT_FALSE(proveByInduction(
      *Prob.Prog, mkOp(OpKind::Ge, {mkVar(X), mkIntLit(0)})));
}

TEST_F(InductionFixture, ProvesMinIsAtMostHead) {
  // forall l: lmin(l) <= head(l) holds unconditionally.
  VarPtr L = freshVar("l", Type::dataTy(Prob.Theta));
  TermPtr Goal = mkOp(OpKind::Le,
                      {mkCall("lmin", Type::intTy(), {mkVar(L)}),
                       mkCall("head", Type::intTy(), {mkVar(L)})});
  EXPECT_TRUE(proveByInduction(*Prob.Prog, Goal));
}

} // namespace
