//===- ServiceTest.cpp - Service subsystem tests --------------------------===//
///
/// \file
/// Tests for src/service/: the JSON layer (strict parsing of untrusted
/// bytes), the frame codec's negative paths (truncation, oversized
/// lengths), address parsing, the JobQueue scheduling/admission semantics,
/// and a multi-client integration pass against a real in-process daemon —
/// concurrent submits, cancels, typed errors, stats and drain, with the
/// invariant that no job is ever lost or double-reported.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/JobQueue.h"
#include "service/Json.h"
#include "service/Protocol.h"
#include "service/Server.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace se2gis;

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

namespace {

JsonValue parseOk(const std::string &Text) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(JsonValue::parse(Text, V, Error)) << Text << ": " << Error;
  return V;
}

void parseFails(const std::string &Text) {
  JsonValue V;
  std::string Error;
  EXPECT_FALSE(JsonValue::parse(Text, V, Error)) << Text;
  EXPECT_FALSE(Error.empty());
}

} // namespace

TEST(ServiceJson, RoundTrip) {
  JsonValue V = parseOk(
      R"({"method":"submit","timeout_ms":250,"deep":[1,2.5,null,true,"x"]})");
  EXPECT_EQ(V.getString("method"), "submit");
  EXPECT_EQ(V.getInt("timeout_ms"), 250);
  const JsonValue *Deep = V.get("deep");
  ASSERT_NE(Deep, nullptr);
  ASSERT_EQ(Deep->items().size(), 5u);
  EXPECT_EQ(Deep->items()[0].asInt(), 1);
  EXPECT_DOUBLE_EQ(Deep->items()[1].asDouble(), 2.5);
  EXPECT_TRUE(Deep->items()[2].isNull());
  EXPECT_TRUE(Deep->items()[3].asBool());
  EXPECT_EQ(Deep->items()[4].asString(), "x");
  // dump → parse is the identity on structure.
  JsonValue Again = parseOk(V.dump());
  EXPECT_EQ(Again.dump(), V.dump());
}

TEST(ServiceJson, StringEscapes) {
  JsonValue V = parseOk(R"({"s":"a\"b\\c\ndAé"})");
  EXPECT_EQ(V.getString("s"), "a\"b\\c\nd" "A" "\xc3\xa9");
  // Control characters must be escaped on output.
  JsonValue Out = JsonValue::object();
  Out.set("s", JsonValue::str(std::string("x\n\x01y")));
  EXPECT_EQ(Out.dump(), "{\"s\":\"x\\n\\u0001y\"}");
}

TEST(ServiceJson, SurrogatePairs) {
  // U+1F600 as a surrogate pair must decode to 4-byte UTF-8.
  JsonValue V = parseOk(R"("😀")");
  EXPECT_EQ(V.asString(), "\xf0\x9f\x98\x80");
  parseFails(R"("\ud83d")");        // lone high surrogate
  parseFails(R"("\ude00")");        // lone low surrogate
  parseFails(R"("\ud83dxx")");      // high surrogate w/o continuation
}

TEST(ServiceJson, RejectsMalformed) {
  parseFails("");
  parseFails("{");
  parseFails("{\"a\":}");
  parseFails("[1,]");
  parseFails("{\"a\":1,}");
  parseFails("01");          // leading zero
  parseFails("1 2");         // trailing bytes
  parseFails("nul");
  parseFails("\"unterminated");
  parseFails("{\"a\" 1}");
  // Depth bound: 100 nested arrays exceed the limit.
  parseFails(std::string(100, '[') + std::string(100, ']'));
}

TEST(ServiceJson, RejectsInvalidUtf8) {
  EXPECT_TRUE(isValidUtf8("plain ascii"));
  EXPECT_TRUE(isValidUtf8("\xc3\xa9"));             // é
  EXPECT_FALSE(isValidUtf8("\xc3"));                // truncated sequence
  EXPECT_FALSE(isValidUtf8("\xc0\xaf"));            // overlong
  EXPECT_FALSE(isValidUtf8("\xed\xa0\x80"));        // surrogate range
  EXPECT_FALSE(isValidUtf8("\xff\xfe"));            // not UTF-8 at all
  // A frame carrying invalid UTF-8 inside a string literal must not parse.
  parseFails(std::string("{\"s\":\"\xc3\x28\"}"));
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

namespace {

/// A connected local socket pair for codec tests.
struct SocketPair {
  int A = -1, B = -1;
  SocketPair() {
    int Fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
    A = Fds[0];
    B = Fds[1];
  }
  ~SocketPair() {
    closeFd(A);
    closeFd(B);
  }
};

} // namespace

TEST(ServiceFraming, RoundTrip) {
  SocketPair P;
  EXPECT_TRUE(writeFrame(P.A, "{\"ok\":true}"));
  std::string Payload;
  EXPECT_EQ(readFrame(P.B, Payload), FrameStatus::Ok);
  EXPECT_EQ(Payload, "{\"ok\":true}");
}

TEST(ServiceFraming, CleanEofBeforePrefix) {
  SocketPair P;
  closeFd(P.A);
  P.A = -1;
  std::string Payload;
  EXPECT_EQ(readFrame(P.B, Payload), FrameStatus::Eof);
}

TEST(ServiceFraming, TruncatedPrefix) {
  SocketPair P;
  // Two of the four length bytes, then hang up.
  unsigned char Half[2] = {0, 0};
  ASSERT_EQ(::write(P.A, Half, 2), 2);
  closeFd(P.A);
  P.A = -1;
  std::string Payload;
  EXPECT_EQ(readFrame(P.B, Payload), FrameStatus::Truncated);
}

TEST(ServiceFraming, TruncatedBody) {
  SocketPair P;
  // Announce 8 bytes, deliver 3.
  unsigned char Prefix[4] = {0, 0, 0, 8};
  ASSERT_EQ(::write(P.A, Prefix, 4), 4);
  ASSERT_EQ(::write(P.A, "abc", 3), 3);
  closeFd(P.A);
  P.A = -1;
  std::string Payload;
  EXPECT_EQ(readFrame(P.B, Payload), FrameStatus::Truncated);
}

TEST(ServiceFraming, OversizedLengthRejectedWithoutAllocation) {
  SocketPair P;
  // 0xFFFFFFFF bytes announced: must be refused from the prefix alone.
  unsigned char Prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(P.A, Prefix, 4), 4);
  std::string Payload;
  EXPECT_EQ(readFrame(P.B, Payload), FrameStatus::Oversized);
  // writeFrame refuses to emit an over-bound payload too.
  std::string Huge(kMaxFrameBytes + 1, 'x');
  EXPECT_FALSE(writeFrame(P.A, Huge));
}

TEST(ServiceFraming, ErrorResponseShape) {
  JsonValue E = makeErrorResponse(ErrorCode::Overloaded, "queue full");
  EXPECT_FALSE(E.getBool("ok", true));
  const JsonValue *Err = E.get("error");
  ASSERT_NE(Err, nullptr);
  EXPECT_EQ(Err->getString("code"), "overloaded");
  EXPECT_EQ(Err->getString("message"), "queue full");
}

//===----------------------------------------------------------------------===//
// Addresses
//===----------------------------------------------------------------------===//

TEST(ServiceAddrTest, Parsing) {
  ServiceAddr A;
  std::string Error;
  EXPECT_TRUE(parseServiceAddr("unix:/tmp/x.sock", A, Error));
  EXPECT_TRUE(A.IsUnix);
  EXPECT_EQ(A.Path, "/tmp/x.sock");

  EXPECT_TRUE(parseServiceAddr("./relative.sock", A, Error));
  EXPECT_TRUE(A.IsUnix);

  EXPECT_TRUE(parseServiceAddr("tcp:127.0.0.1:8441", A, Error));
  EXPECT_FALSE(A.IsUnix);
  EXPECT_EQ(A.Host, "127.0.0.1");
  EXPECT_EQ(A.Port, 8441);

  EXPECT_TRUE(parseServiceAddr("tcp::0", A, Error));
  EXPECT_EQ(A.Host, "127.0.0.1"); // empty host defaults to loopback
  EXPECT_EQ(A.Port, 0);

  EXPECT_FALSE(parseServiceAddr("tcp:127.0.0.1:notaport", A, Error));
  EXPECT_FALSE(parseServiceAddr("tcp:127.0.0.1:99999", A, Error));
  EXPECT_FALSE(parseServiceAddr("", A, Error));
}

//===----------------------------------------------------------------------===//
// JobQueue
//===----------------------------------------------------------------------===//

namespace {

JobSpec spec(int Priority = 0) {
  JobSpec S;
  S.Label = "test";
  S.Priority = Priority;
  return S;
}

} // namespace

TEST(JobQueueTest, PriorityThenFifo) {
  JobQueue Q(/*MaxQueued=*/16);
  std::string A, B, C, D;
  EXPECT_EQ(Q.submit(spec(0), A), AdmitStatus::Admitted);
  EXPECT_EQ(Q.submit(spec(5), B), AdmitStatus::Admitted);
  EXPECT_EQ(Q.submit(spec(0), C), AdmitStatus::Admitted);
  EXPECT_EQ(Q.submit(spec(5), D), AdmitStatus::Admitted);
  // Highest priority first; FIFO within a level.
  EXPECT_EQ(Q.pop()->Id, B);
  EXPECT_EQ(Q.pop()->Id, D);
  EXPECT_EQ(Q.pop()->Id, A);
  EXPECT_EQ(Q.pop()->Id, C);
}

TEST(JobQueueTest, BoundedAdmission) {
  JobQueue Q(/*MaxQueued=*/2);
  std::string Id;
  EXPECT_EQ(Q.submit(spec(), Id), AdmitStatus::Admitted);
  EXPECT_EQ(Q.submit(spec(), Id), AdmitStatus::Admitted);
  EXPECT_EQ(Q.submit(spec(), Id), AdmitStatus::QueueFull);
  // Popping (job starts running) frees a queue slot: bounded means bounded
  // *backlog*, not bounded throughput.
  ASSERT_NE(Q.pop(), nullptr);
  EXPECT_EQ(Q.submit(spec(), Id), AdmitStatus::Admitted);
}

TEST(JobQueueTest, DrainRefusesNewWork) {
  JobQueue Q(16);
  Q.beginDrain();
  std::string Id;
  EXPECT_EQ(Q.submit(spec(), Id), AdmitStatus::Draining);
  EXPECT_TRUE(Q.stats().Draining);
}

TEST(JobQueueTest, CancelQueuedIsImmediate) {
  JobQueue Q(16);
  std::string A, B;
  EXPECT_EQ(Q.submit(spec(), A), AdmitStatus::Admitted);
  EXPECT_EQ(Q.submit(spec(), B), AdmitStatus::Admitted);
  EXPECT_TRUE(Q.cancel(A));
  auto Snap = Q.query(A);
  ASSERT_NE(Snap, nullptr);
  EXPECT_EQ(Snap->State, JobState::Cancelled);
  // The cancelled job never reaches a worker.
  EXPECT_EQ(Q.pop()->Id, B);
  EXPECT_FALSE(Q.cancel("j999")); // unknown id
}

TEST(JobQueueTest, CancelRunningRidesTheToken) {
  JobQueue Q(16);
  std::string A;
  EXPECT_EQ(Q.submit(spec(), A), AdmitStatus::Admitted);
  std::shared_ptr<Job> J = Q.pop();
  ASSERT_NE(J, nullptr);
  EXPECT_EQ(J->State, JobState::Running);
  EXPECT_TRUE(Q.cancel(A));
  EXPECT_TRUE(J->Token.cancelRequested());
  // Terminalizes when the worker reports in, as Cancelled (not Done).
  Q.complete(J, Outcome{});
  EXPECT_EQ(Q.query(A)->State, JobState::Cancelled);
  QueueStats S = Q.stats();
  EXPECT_EQ(S.Cancelled, 1u);
  EXPECT_EQ(S.Completed, 0u);
  // Cancelling a finished job is a benign no-op.
  EXPECT_TRUE(Q.cancel(A));
  EXPECT_EQ(Q.query(A)->State, JobState::Cancelled);
}

TEST(JobQueueTest, ShutdownReleasesWorkers) {
  JobQueue Q(16);
  std::thread Worker([&] { EXPECT_EQ(Q.pop(), nullptr); });
  Q.shutdown();
  Worker.join();
  std::string Id;
  EXPECT_NE(Q.submit(spec(), Id), AdmitStatus::Admitted);
}

TEST(JobQueueTest, WaitIdleTracksInFlight) {
  JobQueue Q(16);
  EXPECT_TRUE(Q.waitIdle(10)); // empty queue is idle
  std::string A;
  EXPECT_EQ(Q.submit(spec(), A), AdmitStatus::Admitted);
  EXPECT_FALSE(Q.waitIdle(10)); // queued work pending
  std::shared_ptr<Job> J = Q.pop();
  EXPECT_FALSE(Q.waitIdle(10)); // running work pending
  Q.complete(J, Outcome{});
  EXPECT_TRUE(Q.waitIdle(10));
}

//===----------------------------------------------------------------------===//
// Integration: a real daemon, multiple concurrent clients
//===----------------------------------------------------------------------===//

namespace {

/// Starts a Server on an ephemeral loopback port and runs it on a
/// background thread; the destructor drains and joins.
struct DaemonFixture {
  std::unique_ptr<Server> S;
  std::thread Runner;
  std::string Addr;

  explicit DaemonFixture(ServiceConfig Config) {
    Config.Listen = "tcp:127.0.0.1:0";
    S = std::make_unique<Server>(std::move(Config));
    std::string Error;
    if (!S->start(Error)) {
      ADD_FAILURE() << "daemon start failed: " << Error;
      return;
    }
    Addr = S->addr().str();
    Runner = std::thread([this] { S->run(); });
  }

  ~DaemonFixture() {
    if (Runner.joinable()) {
      // Drain (idempotent: tests may already have drained via protocol).
      S->requestDrainAsync();
      Runner.join();
    }
  }

  std::unique_ptr<ServiceClient> client() {
    std::string Error;
    auto C = ServiceClient::connect(Addr, Error);
    EXPECT_NE(C, nullptr) << Error;
    return C;
  }
};

JsonValue submitReq(const char *Source, std::int64_t TimeoutMs,
                    const char *Label) {
  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("submit"));
  Req.set("source", JsonValue::str(Source));
  Req.set("timeout_ms", JsonValue::number(TimeoutMs));
  Req.set("label", JsonValue::str(Label));
  return Req;
}

/// Polls `status` until \p JobId is terminal; returns the final state.
std::string awaitTerminal(ServiceClient &C, const std::string &JobId) {
  for (int Tries = 0; Tries < 3000; ++Tries) {
    JsonValue Req = JsonValue::object();
    Req.set("method", JsonValue::str("status"));
    Req.set("job", JsonValue::str(JobId));
    JsonValue Resp;
    std::string Error;
    if (!C.call(Req, Resp, Error)) {
      ADD_FAILURE() << "status call failed: " << Error;
      return "";
    }
    std::string State = Resp.getString("state");
    if (State == "done" || State == "cancelled")
      return State;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "job " << JobId << " never terminalized";
  return "";
}

} // namespace

TEST(ServiceIntegration, TypedErrorsNeverCloseTheConnection) {
  ServiceConfig Config;
  DaemonFixture D(Config);
  auto C = D.client();
  ASSERT_NE(C, nullptr);

  JsonValue Resp;
  std::string Error;

  // Unknown method → typed error, connection stays usable.
  ASSERT_TRUE(C->call("frobnicate", Resp, Error)) << Error;
  EXPECT_FALSE(Resp.getBool("ok", true));
  EXPECT_EQ(Resp.get("error")->getString("code"), "unknown_method");

  // Bad submit (both benchmark and source missing) → bad_request.
  ASSERT_TRUE(C->call("submit", Resp, Error)) << Error;
  EXPECT_EQ(Resp.get("error")->getString("code"), "bad_request");

  // Unknown benchmark → not_found.
  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("submit"));
  Req.set("benchmark", JsonValue::str("no/such/benchmark"));
  ASSERT_TRUE(C->call(Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.get("error")->getString("code"), "not_found");

  // Unknown job id → not_found.
  Req = JsonValue::object();
  Req.set("method", JsonValue::str("status"));
  Req.set("job", JsonValue::str("j999999"));
  ASSERT_TRUE(C->call(Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.get("error")->getString("code"), "not_found");

  // Malformed source that fails elaboration → bad_request, not a crash.
  ASSERT_TRUE(C->call(submitReq("this is not the DSL", 1000, "bad"), Resp,
                      Error))
      << Error;
  EXPECT_EQ(Resp.get("error")->getString("code"), "bad_request");

  // And the connection still answers pings after all of the above.
  ASSERT_TRUE(C->call("ping", Resp, Error)) << Error;
  EXPECT_TRUE(Resp.getBool("ok"));
}

TEST(ServiceIntegration, RawGarbageGetsTypedParseError) {
  ServiceConfig Config;
  DaemonFixture D(Config);

  ServiceAddr A;
  std::string Error;
  ASSERT_TRUE(parseServiceAddr(D.Addr, A, Error));
  int Fd = connectTo(A, Error);
  ASSERT_GE(Fd, 0) << Error;

  // Valid frame, invalid JSON → parse_error; connection survives.
  ASSERT_TRUE(writeFrame(Fd, "{{{not json"));
  std::string Payload;
  ASSERT_EQ(readFrame(Fd, Payload), FrameStatus::Ok);
  JsonValue Resp;
  ASSERT_TRUE(JsonValue::parse(Payload, Resp, Error)) << Error;
  EXPECT_EQ(Resp.get("error")->getString("code"), "parse_error");

  // Invalid UTF-8 inside the frame → also parse_error.
  ASSERT_TRUE(writeFrame(Fd, std::string("{\"method\":\"\xff\xfe\"}")));
  ASSERT_EQ(readFrame(Fd, Payload), FrameStatus::Ok);
  ASSERT_TRUE(JsonValue::parse(Payload, Resp, Error)) << Error;
  EXPECT_EQ(Resp.get("error")->getString("code"), "parse_error");

  // A non-object value → parse_error too (requests must be objects).
  ASSERT_TRUE(writeFrame(Fd, "[1,2,3]"));
  ASSERT_EQ(readFrame(Fd, Payload), FrameStatus::Ok);
  ASSERT_TRUE(JsonValue::parse(Payload, Resp, Error)) << Error;
  EXPECT_FALSE(Resp.getBool("ok", true));

  // Oversized announced length → typed error, then the daemon hangs up
  // (the stream cannot be resynchronized).
  unsigned char Prefix[4] = {0xff, 0x00, 0x00, 0x00};
  ASSERT_EQ(::write(Fd, Prefix, 4), 4);
  ASSERT_EQ(readFrame(Fd, Payload), FrameStatus::Ok);
  ASSERT_TRUE(JsonValue::parse(Payload, Resp, Error)) << Error;
  EXPECT_EQ(Resp.get("error")->getString("code"), "oversized_frame");
  EXPECT_EQ(readFrame(Fd, Payload), FrameStatus::Eof);
  closeFd(Fd);

  // Half a length prefix then hangup must not wedge the daemon.
  Fd = connectTo(A, Error);
  ASSERT_GE(Fd, 0) << Error;
  unsigned char Half[2] = {0, 0};
  ASSERT_EQ(::write(Fd, Half, 2), 2);
  closeFd(Fd);
  auto C = D.client();
  ASSERT_NE(C, nullptr);
  ASSERT_TRUE(C->call("ping", Resp, Error)) << Error;
  EXPECT_TRUE(Resp.getBool("ok"));
}

TEST(ServiceIntegration, VerdictParityAndSharedCache) {
  ServiceConfig Config;
  Config.Workers = 2;
  Config.Base.Cache.Mode = CacheMode::Mem;
  DaemonFixture D(Config);
  auto C = D.client();
  ASSERT_NE(C, nullptr);

  JsonValue Resp;
  std::string Error;

  // Realizable source → done/realizable.
  ASSERT_TRUE(C->call(submitReq(se2gis_tests::kMinSortedSrc, 20000, "min-s"),
                      Resp, Error))
      << Error;
  ASSERT_TRUE(Resp.getBool("ok")) << Resp.dump();
  std::string RealId = Resp.getString("job");
  ASSERT_FALSE(RealId.empty());

  // Unrealizable source → done/unrealizable.
  ASSERT_TRUE(C->call(submitReq(se2gis_tests::kMinUnsortedSrc, 20000, "min-u"),
                      Resp, Error))
      << Error;
  ASSERT_TRUE(Resp.getBool("ok")) << Resp.dump();
  std::string UnrealId = Resp.getString("job");

  EXPECT_EQ(awaitTerminal(*C, RealId), "done");
  EXPECT_EQ(awaitTerminal(*C, UnrealId), "done");

  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("result"));
  Req.set("job", JsonValue::str(RealId));
  ASSERT_TRUE(C->call(Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.getString("verdict"), "realizable");
  EXPECT_FALSE(Resp.getString("solution").empty());

  Req.set("job", JsonValue::str(UnrealId));
  ASSERT_TRUE(C->call(Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.getString("verdict"), "unrealizable");

  // A repeated submission of the same problem hits the warm shared cache.
  ASSERT_TRUE(C->call(submitReq(se2gis_tests::kMinSortedSrc, 20000, "min-s2"),
                      Resp, Error))
      << Error;
  std::string RepeatId = Resp.getString("job");
  EXPECT_EQ(awaitTerminal(*C, RepeatId), "done");

  ASSERT_TRUE(C->call("stats", Resp, Error)) << Error;
  ASSERT_TRUE(Resp.getBool("ok"));
  const JsonValue *Cache = Resp.get("cache");
  ASSERT_NE(Cache, nullptr);
  EXPECT_GT(Cache->getInt("smt_hits", 0), 0) << Resp.dump();
  EXPECT_EQ(Resp.getInt("completed"), 3);
}

TEST(ServiceIntegration, TimeoutJobReportsTimeoutVerdict) {
  ServiceConfig Config;
  DaemonFixture D(Config);
  auto C = D.client();
  ASSERT_NE(C, nullptr);

  JsonValue Resp;
  std::string Error;
  // A 1 ms budget cannot complete the synthesis: the deadline fires inside
  // the run and surfaces as a verdict, never a hang.
  ASSERT_TRUE(C->call(submitReq(se2gis_tests::kMinSortedSrc, 1, "tmo"), Resp,
                      Error))
      << Error;
  ASSERT_TRUE(Resp.getBool("ok")) << Resp.dump();
  std::string Id = Resp.getString("job");
  EXPECT_EQ(awaitTerminal(*C, Id), "done");

  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("result"));
  Req.set("job", JsonValue::str(Id));
  ASSERT_TRUE(C->call(Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.getString("verdict"), "timeout");
}

TEST(ServiceIntegration, AdmissionControlRejectsTyped) {
  ServiceConfig Config;
  Config.Workers = 1;
  Config.MaxQueue = 1;
  DaemonFixture D(Config);
  auto C = D.client();
  ASSERT_NE(C, nullptr);

  JsonValue Resp;
  std::string Error;
  // Flood: one job runs, one sits in the bounded queue, the rest must be
  // refused with a typed `overloaded` — not blocked, not dropped silently.
  int Overloaded = 0;
  std::vector<std::string> Admitted;
  for (int I = 0; I < 8; ++I) {
    ASSERT_TRUE(C->call(
        submitReq(se2gis_tests::kMinSortedSrc, 20000, "flood"), Resp, Error))
        << Error;
    if (Resp.getBool("ok"))
      Admitted.push_back(Resp.getString("job"));
    else {
      EXPECT_EQ(Resp.get("error")->getString("code"), "overloaded");
      ++Overloaded;
    }
  }
  EXPECT_GT(Overloaded, 0);
  ASSERT_TRUE(C->call("stats", Resp, Error)) << Error;
  EXPECT_EQ(Resp.getInt("rejected"), Overloaded);
  for (const std::string &Id : Admitted)
    EXPECT_EQ(awaitTerminal(*C, Id), "done");
}

TEST(ServiceIntegration, CancelQueuedJob) {
  ServiceConfig Config;
  Config.Workers = 1;
  DaemonFixture D(Config);
  auto C = D.client();
  ASSERT_NE(C, nullptr);

  JsonValue Resp;
  std::string Error;
  // First job occupies the single worker; the second is parked in the
  // queue and cancelled there.
  ASSERT_TRUE(C->call(submitReq(se2gis_tests::kMinSortedSrc, 20000, "run"),
                      Resp, Error))
      << Error;
  ASSERT_TRUE(Resp.getBool("ok"));
  std::string Running = Resp.getString("job");
  ASSERT_TRUE(C->call(submitReq(se2gis_tests::kMinSortedSrc, 20000, "park"),
                      Resp, Error))
      << Error;
  ASSERT_TRUE(Resp.getBool("ok"));
  std::string Parked = Resp.getString("job");

  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("cancel"));
  Req.set("job", JsonValue::str(Parked));
  ASSERT_TRUE(C->call(Req, Resp, Error)) << Error;
  EXPECT_TRUE(Resp.getBool("ok")) << Resp.dump();

  // The running job still finishes; the parked one terminalizes without
  // ever having run (unless the first finished absurdly fast and the
  // parked job had already started — then cancel rode the token instead;
  // either way it must terminalize and nothing may hang).
  EXPECT_EQ(awaitTerminal(*C, Running), "done");
  std::string ParkedState = awaitTerminal(*C, Parked);
  EXPECT_TRUE(ParkedState == "cancelled" || ParkedState == "done")
      << ParkedState;
}

TEST(ServiceIntegration, ManyConcurrentClientsNoJobLost) {
  ServiceConfig Config;
  Config.Workers = 2;
  Config.MaxQueue = 64;
  Config.Base.Cache.Mode = CacheMode::Mem;
  DaemonFixture D(Config);

  // 8 clients, each its own connection and two submissions (one
  // realizable, one unrealizable), all concurrent.
  constexpr int kClients = 8;
  std::vector<std::thread> Threads;
  std::mutex IdsMutex;
  std::vector<std::string> AllIds;
  std::atomic<int> Failures{0};

  for (int T = 0; T < kClients; ++T) {
    Threads.emplace_back([&, T] {
      std::string Error;
      auto C = ServiceClient::connect(D.Addr, Error);
      if (!C) {
        ++Failures;
        return;
      }
      const char *Sources[2] = {se2gis_tests::kMinSortedSrc,
                                se2gis_tests::kMinUnsortedSrc};
      const char *Expect[2] = {"realizable", "unrealizable"};
      for (int K = 0; K < 2; ++K) {
        JsonValue Resp;
        std::string Label = "c" + std::to_string(T) + "-" + std::to_string(K);
        if (!C->call(submitReq(Sources[K], 30000, Label.c_str()), Resp,
                     Error) ||
            !Resp.getBool("ok")) {
          ++Failures;
          continue;
        }
        std::string Id = Resp.getString("job");
        {
          std::lock_guard<std::mutex> Lock(IdsMutex);
          AllIds.push_back(Id);
        }
        if (awaitTerminal(*C, Id) != "done") {
          ++Failures;
          continue;
        }
        JsonValue Req = JsonValue::object();
        Req.set("method", JsonValue::str("result"));
        Req.set("job", JsonValue::str(Id));
        if (!C->call(Req, Resp, Error) ||
            Resp.getString("verdict") != Expect[K])
          ++Failures;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0);
  // No job lost, none double-reported: every id unique, and the stats
  // account for exactly the submissions made.
  std::set<std::string> Unique(AllIds.begin(), AllIds.end());
  EXPECT_EQ(Unique.size(), AllIds.size());
  EXPECT_EQ(AllIds.size(), static_cast<std::size_t>(2 * kClients));

  auto C = D.client();
  ASSERT_NE(C, nullptr);
  JsonValue Resp;
  std::string Error;
  ASSERT_TRUE(C->call("stats", Resp, Error)) << Error;
  EXPECT_EQ(Resp.getInt("submitted"), 2 * kClients);
  EXPECT_EQ(Resp.getInt("completed"), 2 * kClients);
  EXPECT_EQ(Resp.getInt("queue_depth"), 0);
  EXPECT_EQ(Resp.getInt("in_flight"), 0);
}

TEST(ServiceIntegration, GracefulDrainViaProtocol) {
  ServiceConfig Config;
  Config.Workers = 1;
  DaemonFixture D(Config);
  auto C = D.client();
  ASSERT_NE(C, nullptr);

  JsonValue Resp;
  std::string Error;
  ASSERT_TRUE(C->call(submitReq(se2gis_tests::kMinSortedSrc, 20000, "last"),
                      Resp, Error))
      << Error;
  ASSERT_TRUE(Resp.getBool("ok"));

  // Drain: the in-flight job finishes under the drain budget, then the
  // daemon reports and shuts down.
  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("drain"));
  Req.set("deadline_ms", JsonValue::number(static_cast<std::int64_t>(30000)));
  ASSERT_TRUE(C->call(Req, Resp, Error)) << Error;
  EXPECT_TRUE(Resp.getBool("ok")) << Resp.dump();
  EXPECT_TRUE(Resp.getBool("drained"));
  EXPECT_EQ(Resp.getInt("completed"), 1);

  // The run loop exits; afterwards new connections are refused.
  D.Runner.join();
  auto After = ServiceClient::connect(D.Addr, Error);
  EXPECT_EQ(After, nullptr);
}
