//===- RecursionElim2Test.cpp - Elimination with non-identity repr --------===//

#include "core/RecursionElim.h"

#include "core/Approximation.h"
#include "frontend/Elaborate.h"
#include "suite/Benchmarks.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

struct ParFixture : public ::testing::Test {
  void SetUp() override {
    Def = findBenchmark("parallel/sum");
    ASSERT_NE(Def, nullptr);
    Prob = loadBenchmark(*Def);
    Clist = Prob.Theta;
  }
  const BenchmarkDef *Def = nullptr;
  Problem Prob;
  const Datatype *Clist = nullptr;
};

TEST_F(ParFixture, NonIdentityReprIsDetected) {
  EXPECT_FALSE(Prob.ReprIdentity);
  EXPECT_EQ(Prob.Repr, "repr");
  EXPECT_NE(Prob.Theta, Prob.Tau);
}

TEST_F(ParFixture, ConcatOfVarsIsNotCanonical) {
  RecursionEliminator Elim(Prob);
  const ConstructorDecl *Concat = Clist->findConstructor("Concat");
  TermPtr T = mkCtor(Concat, {mkVar(freshVar("x", Type::dataTy(Clist))),
                              mkVar(freshVar("y", Type::dataTy(Clist)))});
  EquationParts Parts = Elim.eliminate(T);
  EXPECT_FALSE(Parts.Canonical);
  // The left side blocks hard (bare under the stuck fold); it must be
  // ordered before the soft r(y)-wrapped variable.
  ASSERT_GE(Parts.BlockingVars.size(), 1u);
}

TEST_F(ParFixture, ConcatSingleVarIsCanonical) {
  RecursionEliminator Elim(Prob);
  const ConstructorDecl *Concat = Clist->findConstructor("Concat");
  const ConstructorDecl *Single = Clist->findConstructor("Single");
  TermPtr T = mkCtor(
      Concat, {mkCtor(Single, {mkVar(freshVar("a", Type::intTy()))}),
               mkVar(freshVar("y", Type::dataTy(Clist)))});
  EquationParts Parts = Elim.eliminate(T);
  EXPECT_TRUE(Parts.Canonical);
  ASSERT_EQ(Parts.Alpha.size(), 1u);
  // rhs: a + lsum(repr(y)) eliminated to a + v.
  EXPECT_EQ(Parts.Rhs->getKind(), TermKind::Op);
  // lhs: join(s0(a), v).
  EXPECT_EQ(Parts.Lhs->getKind(), TermKind::Unknown);
  EXPECT_EQ(Parts.Lhs->getCallee(), "join");
}

TEST_F(ParFixture, CanonicalExpansionsPruneDivergentSpine) {
  RecursionEliminator Elim(Prob);
  const ConstructorDecl *Concat = Clist->findConstructor("Concat");
  TermPtr Seed =
      mkCtor(Concat, {mkVar(freshVar("x", Type::dataTy(Clist))),
                      mkVar(freshVar("y", Type::dataTy(Clist)))});
  auto Canon = canonicalExpansions(Prob, Elim, Seed, 64, 6);
  ASSERT_FALSE(Canon.empty());
  for (const TermPtr &T : Canon)
    EXPECT_TRUE(Elim.eliminate(T).Canonical) << T->str();
}

TEST_F(ParFixture, ElimVarDefinitionWrapsRepr) {
  RecursionEliminator Elim(Prob);
  VarPtr Y = freshVar("y", Type::dataTy(Clist));
  TermPtr Def = Elim.elimVarDefinition(Y, {});
  // lsum(repr(y)) for the non-identity representation.
  ASSERT_EQ(Def->getKind(), TermKind::Call);
  EXPECT_EQ(Def->getCallee(), Prob.Reference);
  EXPECT_EQ(Def->getArg(0)->getKind(), TermKind::Call);
  EXPECT_EQ(Def->getArg(0)->getCallee(), "repr");
}

TEST(ElimSharedAlphaTest, BothSidesShareEliminationVariables) {
  // For tree/sum, G(Node(a,l,r)) and f(Node(a,l,r)) both recurse on l and
  // r; elimination must map each to ONE shared variable.
  const BenchmarkDef *Def = findBenchmark("tree/sum");
  ASSERT_NE(Def, nullptr);
  Problem P = loadBenchmark(*Def);
  RecursionEliminator Elim(P);
  const ConstructorDecl *Node = P.Theta->findConstructor("Node");
  TermPtr T = mkCtor(Node, {mkVar(freshVar("a", Type::intTy())),
                            mkVar(freshVar("l", Type::dataTy(P.Theta))),
                            mkVar(freshVar("r", Type::dataTy(P.Theta)))});
  EquationParts Parts = Elim.eliminate(T);
  ASSERT_EQ(Parts.Alpha.size(), 2u);
  // The same elimination variables occur on both sides.
  for (const auto &[Orig, ElimVar] : Parts.Alpha) {
    (void)Orig;
    EXPECT_TRUE(occursFree(Parts.Lhs, ElimVar->Id));
    EXPECT_TRUE(occursFree(Parts.Rhs, ElimVar->Id));
  }
}

TEST(ElimExtrasTest, FreshExtrasPerEquation) {
  const BenchmarkDef *Def = findBenchmark("list/count_eq");
  ASSERT_NE(Def, nullptr);
  Problem P = loadBenchmark(*Def);
  RecursionEliminator Elim(P);
  const ConstructorDecl *Cons = P.Theta->findConstructor("Cons");
  TermPtr T = mkCtor(Cons, {mkVar(freshVar("a", Type::intTy())),
                            mkVar(freshVar("l", Type::dataTy(P.Theta)))});
  EquationParts P1 = Elim.eliminate(T);
  EquationParts P2 = Elim.eliminate(T);
  ASSERT_EQ(P1.Extras.size(), 1u);
  ASSERT_EQ(P2.Extras.size(), 1u);
  // Definition 4.6 requires the terms of T to share no free variables;
  // fresh extras per equation keep that invariant for the parameters too.
  EXPECT_NE(P1.Extras[0]->Id, P2.Extras[0]->Id);
}

} // namespace
