//===- SuiteTest.cpp - Benchmark registry integration tests ---------------===//

#include "suite/Runner.h"

#include "eval/Interp.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

TEST(SuiteTest, RegistryIsWellFormed) {
  const auto &All = allBenchmarks();
  ASSERT_GE(All.size(), 100u);
  int Realizable = 0, Unrealizable = 0;
  std::set<std::string> Names;
  for (const BenchmarkDef &B : All) {
    EXPECT_TRUE(Names.insert(B.Name).second) << "duplicate " << B.Name;
    EXPECT_FALSE(B.Category.empty());
    (B.ExpectRealizable ? Realizable : Unrealizable) += 1;
  }
  // The paper's split: 95 realizable / 45 unrealizable of 140.
  EXPECT_GE(Realizable, 60);
  EXPECT_GE(Unrealizable, 40);
}

TEST(SuiteTest, EveryBenchmarkLoadsAndValidates) {
  for (const BenchmarkDef &B : allBenchmarks()) {
    try {
      Problem P = loadBenchmark(B);
      EXPECT_FALSE(P.Unknowns.empty()) << B.Name;
      EXPECT_NE(P.Theta, nullptr) << B.Name;
    } catch (const UserError &E) {
      ADD_FAILURE() << B.Name << ": " << E.what();
    }
  }
}

TEST(SuiteTest, FindBenchmarkByName) {
  EXPECT_NE(findBenchmark("sortedlist/min"), nullptr);
  EXPECT_NE(findBenchmark("bst/frequency"), nullptr);
  EXPECT_NE(findBenchmark("unreal/forced_unknown_nesting"), nullptr);
  EXPECT_EQ(findBenchmark("no/such"), nullptr);
}

// Quick end-to-end spot checks through the runner: one easy realizable, one
// easy unrealizable, filtered to keep CI time small.
TEST(SuiteTest, RunnerSolvesFilteredSubset) {
  SuiteOptions Opts;
  Opts.Config.Algo.TimeoutMs = 15000;
  Opts.Algorithms = {AlgorithmKind::SE2GIS};
  Opts.Config.Filter = "alist/count_key";
  Opts.Config.Verbose = false;
  auto Recs = runSuite(Opts);
  ASSERT_EQ(Recs.size(), 1u);
  EXPECT_TRUE(isSolved(Recs[0])) << Recs[0].Result.Detail;
}

TEST(SuiteTest, RunnerDetectsUnrealizableSubset) {
  SuiteOptions Opts;
  Opts.Config.Algo.TimeoutMs = 15000;
  Opts.Algorithms = {AlgorithmKind::SE2GIS, AlgorithmKind::SEGISUC};
  Opts.Config.Filter = "unreal/min_no_invariant";
  Opts.Config.Verbose = false;
  auto Recs = runSuite(Opts);
  ASSERT_EQ(Recs.size(), 2u);
  for (const SuiteRecord &R : Recs)
    EXPECT_TRUE(isSolved(R))
        << algorithmName(R.Algorithm) << ": " << R.Result.Detail;
}

// A correctness property over solved realizable benchmarks: the synthesized
// solution agrees with the reference on random invariant-satisfying inputs
// (parameterized over a fast representative subset).
class SolutionAgreement : public ::testing::TestWithParam<const char *> {};

TEST_P(SolutionAgreement, MatchesReferenceOnSamples) {
  const BenchmarkDef *Def = findBenchmark(GetParam());
  ASSERT_NE(Def, nullptr);
  Problem P = loadBenchmark(*Def);
  AlgoOptions Opts;
  Opts.TimeoutMs = 20000;
  Outcome R = runSE2GIS(P, Opts);
  ASSERT_EQ(R.V, Verdict::Realizable) << R.Detail;

  // Sample bounded inputs satisfying the invariant and compare.
  Interpreter Ref(*P.Prog);
  Interpreter Tgt(*P.Prog);
  Tgt.bindUnknowns(&R.Solution);

  // Deterministic pseudo-random input values.
  unsigned Seed = 12345;
  auto NextInt = [&]() {
    Seed = Seed * 1103515245 + 12345;
    return static_cast<long long>((Seed >> 16) % 11) - 5;
  };
  std::function<ValuePtr(const Datatype *, int)> Gen =
      [&](const Datatype *D, int Depth) -> ValuePtr {
    unsigned CI = Depth <= 0 ? 0 : (Seed >> 8) % D->numConstructors();
    Seed = Seed * 1103515245 + 12345;
    if (Depth <= 0) {
      for (unsigned K = 0; K < D->numConstructors(); ++K)
        if (D->isBaseConstructor(K)) {
          CI = K;
          break;
        }
    }
    const ConstructorDecl &C = D->getConstructor(CI);
    std::vector<ValuePtr> Fields;
    for (const TypePtr &FT : C.Fields) {
      if (FT->isData())
        Fields.push_back(Gen(FT->getDatatype(), Depth - 1));
      else if (FT->isInt())
        Fields.push_back(Value::mkInt(NextInt()));
      else
        Fields.push_back(Value::mkBool(NextInt() > 0));
    }
    return Value::mkData(&C, std::move(Fields));
  };

  const RecFunction *RefFn = P.Prog->findFunction(P.Reference);
  int Checked = 0;
  for (int Trial = 0; Trial < 200 && Checked < 25; ++Trial) {
    ValuePtr X = Gen(P.Theta, 3);
    if (!P.Invariant.empty() &&
        !Ref.call(P.Invariant, {X})->getBool())
      continue;
    ++Checked;
    std::vector<ValuePtr> RefArgs, TgtArgs;
    for (const VarPtr &E : RefFn->getParams()) {
      (void)E;
      ValuePtr V = Value::mkInt(NextInt());
      RefArgs.push_back(V);
      TgtArgs.push_back(V);
    }
    RefArgs.push_back(Ref.call(P.Repr, {X}));
    TgtArgs.push_back(X);
    ValuePtr Want = Ref.call(P.Reference, RefArgs);
    ValuePtr Got = Tgt.call(P.Target, TgtArgs);
    EXPECT_TRUE(valueEquals(Want, Got))
        << "input " << X->str() << ": reference " << Want->str()
        << ", synthesized " << Got->str();
  }
  EXPECT_GT(Checked, 0) << "no invariant-satisfying samples generated";
}

INSTANTIATE_TEST_SUITE_P(
    FastRealizable, SolutionAgreement,
    ::testing::Values("list/sum", "list/count_eq", "sortedlist/min",
                      "sortedlist/max", "tree/sum", "parallel/sum",
                      "postcond/min_max", "evenlist/parity_of_sum",
                      "constlist/max"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
