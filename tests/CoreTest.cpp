//===- CoreTest.cpp - Recursion elimination, witnesses, algorithms --------===//

#include "core/Algorithms.h"
#include "core/Approximation.h"
#include "core/Certificates.h"
#include "core/InvariantInfer.h"
#include "core/RecursionElim.h"
#include "core/Witness.h"

#include "ast/Simplify.h"
#include "frontend/Elaborate.h"
#include "synth/Grammar.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

AlgoOptions testOptions(std::int64_t TimeoutMs = 20000) {
  AlgoOptions Opts;
  Opts.TimeoutMs = TimeoutMs;
  return Opts;
}

struct ElimFixture : public ::testing::Test {
  void SetUp() override { Prob = loadProblem(se2gis_tests::kMinSortedSrc); }
  Problem Prob;
};

TEST_F(ElimFixture, EliminatesBaseConstructorTerm) {
  RecursionEliminator Elim(Prob);
  const ConstructorDecl *Elt = Prob.Theta->findConstructor("Elt");
  VarPtr A = freshVar("a", Type::intTy());
  EquationParts Parts = Elim.eliminate(mkCtor(Elt, {mkVar(A)}));
  EXPECT_TRUE(Parts.Canonical);
  EXPECT_TRUE(Parts.Alpha.empty());
  // lhs = b1(a), rhs = a.
  EXPECT_EQ(Parts.Lhs->getKind(), TermKind::Unknown);
  EXPECT_EQ(Parts.Lhs->getCallee(), "b1");
  EXPECT_EQ(Parts.Rhs->str(), A->Name);
}

TEST_F(ElimFixture, EliminatesConsTermWithAlphaVariable) {
  RecursionEliminator Elim(Prob);
  const ConstructorDecl *Cons = Prob.Theta->findConstructor("Cons");
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr L = freshVar("l", Type::dataTy(Prob.Theta));
  EquationParts Parts = Elim.eliminate(mkCtor(Cons, {mkVar(A), mkVar(L)}));
  EXPECT_TRUE(Parts.Canonical);
  ASSERT_EQ(Parts.Alpha.size(), 1u);
  EXPECT_EQ(Parts.Alpha[0].first->Id, L->Id);
  // rhs = min(a, v) where v = alpha(l).
  ASSERT_EQ(Parts.Rhs->getKind(), TermKind::Op);
  EXPECT_EQ(Parts.Rhs->getOp(), OpKind::Min);
  EXPECT_EQ(Parts.Rhs->getArg(1)->getVar()->Id, Parts.Alpha[0].second->Id);
  // lhs = b2(a): no recursion allowed by the skeleton.
  EXPECT_EQ(Parts.Lhs->getCallee(), "b2");
}

TEST_F(ElimFixture, ElimVarDefinitionBuildsUnit) {
  RecursionEliminator Elim(Prob);
  VarPtr Y = freshVar("y", Type::dataTy(Prob.Theta));
  TermPtr Def = Elim.elimVarDefinition(Y, {});
  // The representation is the auto-generated identity, so the unit is
  // lmin(y) directly.
  ASSERT_TRUE(Prob.ReprIdentity);
  ASSERT_EQ(Def->getKind(), TermKind::Call);
  EXPECT_EQ(Def->getCallee(), "lmin");
  EXPECT_EQ(Def->getArg(0)->getKind(), TermKind::Var);
  EXPECT_EQ(Def->getArg(0)->getVar()->Id, Y->Id);
}

TEST_F(ElimFixture, InitialApproximationHasOneTermPerCtor) {
  Approximation Approx(Prob);
  ASSERT_TRUE(Approx.initialize());
  EXPECT_EQ(Approx.terms().size(), 2u);
  Sge System = Approx.buildSge();
  ASSERT_EQ(System.Eqns.size(), 2u);
  // Initial guards are trivial.
  EXPECT_EQ(System.Eqns[0].Guard->str(), "true");
  EXPECT_EQ(System.Eqns[1].Guard->str(), "true");
}

TEST_F(ElimFixture, ImageInvariantsInstantiateAtElimVars) {
  Approximation Approx(Prob);
  ASSERT_TRUE(Approx.initialize());
  VarPtr X = freshVar("imgx", Type::intTy());
  Approx.addImageInvariant(X, mkOp(OpKind::Ge, {mkVar(X), mkIntLit(0)}));
  Sge System = Approx.buildSge();
  // The Cons equation (with one elim var) now has a non-trivial guard.
  bool FoundGuard = false;
  for (const SgeEquation &E : System.Eqns)
    if (E.Guard->str() != "true")
      FoundGuard = true;
  EXPECT_TRUE(FoundGuard);
}

TEST(FrameTest, MaximalFrameCapturesUnknownFreeSubterms) {
  // u1(max(x,0)) + h2(y) frames as u1(o0) + h2(o1), args (max(x,0), y).
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr Y = freshVar("y", Type::intTy());
  TermPtr L = mkAdd(
      mkUnknown("u1", Type::intTy(),
                {mkOp(OpKind::Max, {mkVar(X), mkIntLit(0)})}),
      mkUnknown("h2", Type::intTy(), {mkVar(Y)}));
  Frame F = computeFrame(L);
  ASSERT_EQ(F.Args.size(), 2u);
  EXPECT_EQ(F.Args[0]->str(), "max(" + X->Name + ", 0)");
  EXPECT_EQ(F.Args[1]->str(), Y->Name);
  EXPECT_FALSE(containsUnknown(F.Args[0]));
  EXPECT_TRUE(containsUnknown(F.F));
  // The frame itself has no variables.
  EXPECT_TRUE(freeVars(F.F).empty());
}

TEST(FrameTest, EqualFramesForRenamedEquations) {
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr Z = freshVar("z", Type::intTy());
  TermPtr L1 = mkUnknown("u", Type::intTy(), {mkVar(X)});
  TermPtr L2 = mkUnknown("u", Type::intTy(), {mkVar(Z)});
  EXPECT_TRUE(termEquals(computeFrame(L1).F, computeFrame(L2).F));
}

TEST(FrameTest, ConstantsAreCapturedToo) {
  // The paper's h'(0, z) example: h1(0) + h2(z).
  VarPtr Z = freshVar("z", Type::intTy());
  TermPtr L = mkAdd(mkUnknown("h1", Type::intTy(), {mkIntLit(0)}),
                    mkUnknown("h2", Type::intTy(), {mkVar(Z)}));
  Frame F = computeFrame(L);
  ASSERT_EQ(F.Args.size(), 2u);
  EXPECT_EQ(F.Args[0]->str(), "0");
}

TEST(WitnessTest, PaperSection6Example) {
  // h1(max(x,0)) + h2(y) = max(x+y, 0) admits the witness pair
  // ([x<- -3, y<-2], [x<- -1, y<-2]) (or a similar one).
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr Y = freshVar("y", Type::intTy());
  TermPtr Lhs = mkAdd(
      mkUnknown("h1", Type::intTy(),
                {mkOp(OpKind::Max, {mkVar(X), mkIntLit(0)})}),
      mkUnknown("h2", Type::intTy(), {mkVar(Y)}));
  TermPtr Rhs =
      mkOp(OpKind::Max, {mkAdd(mkVar(X), mkVar(Y)), mkIntLit(0)});
  Sge System;
  System.Eqns.push_back(SgeEquation{mkTrue(), Lhs, Rhs, 0});
  auto W = findFunctionalWitness(System, 2000, Deadline());
  ASSERT_TRUE(W.has_value());
  // Both models agree on max(x,0) and y but differ on max(x+y,0).
  auto Eval = [&](const SmtModel &M, const TermPtr &T) {
    Env E;
    for (const auto &[V, Val] : M.assignments())
      E[V->Id] = Val;
    return evalScalarTerm(T, E);
  };
  ValuePtr In1a = Eval(W->First.M,
                       mkOp(OpKind::Max, {mkVar(X), mkIntLit(0)}));
  ValuePtr In2a = Eval(W->Second.M,
                       mkOp(OpKind::Max, {mkVar(X), mkIntLit(0)}));
  ValuePtr Out1 = Eval(W->First.M, Rhs);
  ValuePtr Out2 = Eval(W->Second.M, Rhs);
  EXPECT_TRUE(valueEquals(In1a, In2a));
  EXPECT_FALSE(valueEquals(Out1, Out2));
}

TEST(WitnessTest, NoWitnessForRealizableSystem) {
  VarPtr X = freshVar("x", Type::intTy());
  Sge System;
  System.Eqns.push_back(SgeEquation{
      mkTrue(), mkUnknown("u", Type::intTy(), {mkVar(X)}),
      mkAdd(mkVar(X), mkIntLit(1)), 0});
  EXPECT_FALSE(findFunctionalWitness(System, 2000, Deadline()).has_value());
}

// --- End-to-end algorithm runs ------------------------------------------//

TEST(AlgorithmsTest, SE2GISSolvesSumWithoutInvariant) {
  Problem P = loadProblem(se2gis_tests::kSumSrc);
  Outcome R = runSE2GIS(P, testOptions());
  ASSERT_EQ(R.V, Verdict::Realizable) << R.Detail;
  EXPECT_GE(R.Stats.Refinements, 1);
  EXPECT_EQ(R.Stats.DatatypeInvariants + R.Stats.ImageInvariants, 0);
}

TEST(AlgorithmsTest, SE2GISSolvesMinSortedViaCoarsening) {
  Problem P = loadProblem(se2gis_tests::kMinSortedSrc);
  Outcome R = runSE2GIS(P, testOptions());
  ASSERT_EQ(R.V, Verdict::Realizable) << R.Detail;
  // The invariant a <= min(l) must have been inferred (datatype kind).
  EXPECT_GE(R.Stats.DatatypeInvariants, 1);
  EXPECT_GE(R.Stats.Coarsenings, 1);
  // The solution must behave like the head function.
  Interpreter I(*P.Prog);
  I.bindUnknowns(&R.Solution);
  const ConstructorDecl *Elt = P.Theta->findConstructor("Elt");
  const ConstructorDecl *Cons = P.Theta->findConstructor("Cons");
  ValuePtr L = Value::mkData(
      Cons, {Value::mkInt(2), Value::mkData(Elt, {Value::mkInt(7)})});
  EXPECT_EQ(I.call("mins", {L})->getInt(), 2);
}

TEST(AlgorithmsTest, SE2GISReportsMinUnsortedUnrealizable) {
  Problem P = loadProblem(se2gis_tests::kMinUnsortedSrc);
  Outcome R = runSE2GIS(P, testOptions());
  ASSERT_EQ(R.V, Verdict::Unrealizable) << R.Detail;
  EXPECT_NE(R.Detail.find("witness"), std::string::npos);
  EXPECT_NE(R.Detail.find("concrete inputs"), std::string::npos);
}

TEST(AlgorithmsTest, SEGISSolvesSum) {
  Problem P = loadProblem(se2gis_tests::kSumSrc);
  Outcome R = runSEGIS(P, testOptions(), /*WithUC=*/false);
  ASSERT_EQ(R.V, Verdict::Realizable) << R.Detail;
}

TEST(AlgorithmsTest, SEGISTimesOutOnUnrealizable) {
  Problem P = loadProblem(se2gis_tests::kMinUnsortedSrc);
  Outcome R = runSEGIS(P, testOptions(1500), /*WithUC=*/false);
  EXPECT_EQ(R.V, Verdict::Timeout);
}

TEST(AlgorithmsTest, SEGISUCReportsUnrealizable) {
  Problem P = loadProblem(se2gis_tests::kMinUnsortedSrc);
  Outcome R = runSEGIS(P, testOptions(), /*WithUC=*/true);
  ASSERT_EQ(R.V, Verdict::Unrealizable) << R.Detail;
  EXPECT_NE(R.Detail.find("concrete inputs"), std::string::npos);
}

TEST(AlgorithmsTest, SEGISUCSolvesMinSorted) {
  // Fully bounded terms carry the evaluated invariant, so SEGIS+UC can
  // solve the sorted-min problem without inferring anything.
  Problem P = loadProblem(se2gis_tests::kMinSortedSrc);
  Outcome R = runSEGIS(P, testOptions(), /*WithUC=*/true);
  ASSERT_EQ(R.V, Verdict::Realizable) << R.Detail;
}

TEST(AlgorithmsTest, SolutionStringRendering) {
  Problem P = loadProblem(se2gis_tests::kSumSrc);
  Outcome R = runSE2GIS(P, testOptions());
  ASSERT_EQ(R.V, Verdict::Realizable) << R.Detail;
  std::string S = solutionToString(P, R.Solution);
  EXPECT_NE(S.find("let f0"), std::string::npos);
  EXPECT_NE(S.find("let f1"), std::string::npos);
}

} // namespace

//===- Non-identity representation: parallelizing sum over concat-lists ---===//

namespace {

const char *kParallelSumSrc = R"(
type clist = Single of int | Concat of clist * clist
type list = Elt of int | Cons of int * list

let rec lsum = function
  | Elt a -> a
  | Cons (a, l) -> a + lsum l

let rec repr = function
  | Single a -> Elt a
  | Concat (x, y) -> app (repr y) x
and app (l : list) = function
  | Single a -> Cons (a, l)
  | Concat (x, y) -> app (app l y) x

let rec par : int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)

synthesize par equiv lsum via repr
)";

TEST(AlgorithmsTest, SE2GISParallelizesSumOverConcatLists) {
  Problem P = loadProblem(kParallelSumSrc);
  Outcome R = runSE2GIS(P, testOptions(30000));
  ASSERT_EQ(R.V, Verdict::Realizable) << R.Detail;
  // join must add its arguments; check on a concrete concat-tree.
  Interpreter I(*P.Prog);
  I.bindUnknowns(&R.Solution);
  const ConstructorDecl *Single = P.Theta->findConstructor("Single");
  const ConstructorDecl *Concat = P.Theta->findConstructor("Concat");
  ValuePtr T = Value::mkData(
      Concat, {Value::mkData(Concat, {Value::mkData(Single, {Value::mkInt(1)}),
                                      Value::mkData(Single, {Value::mkInt(2)})}),
               Value::mkData(Single, {Value::mkInt(4)})});
  EXPECT_EQ(I.call("par", {T})->getInt(), 7);
}

} // namespace
