//===- RunnerParallelTest.cpp - Parallel suite execution tests ------------===//
///
/// \file
/// Covers the parallel execution layer: the shared thread pool (task
/// completion, value return, exception propagation), the perf-counter
/// subsystem under concurrency, and the determinism contract of the suite
/// runner — SE2GIS_JOBS=4 and SE2GIS_JOBS=1 must produce the same records
/// in the same order on a filtered sub-suite.
///
//===----------------------------------------------------------------------===//

#include "suite/Runner.h"

#include "support/PerfCounters.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace se2gis;

namespace {

// --- ThreadPool ---------------------------------------------------------===//

TEST(ThreadPoolTest, CompletesAllTasks) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Count{0};
  std::vector<std::future<void>> Pending;
  for (int I = 0; I < 100; ++I)
    Pending.push_back(Pool.enqueue([&Count] { ++Count; }));
  for (auto &F : Pending)
    F.get();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool Pool(2);
  std::vector<std::future<int>> Pending;
  for (int I = 0; I < 10; ++I)
    Pending.push_back(Pool.enqueue([I] { return I * I; }));
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Pending[I].get(), I * I);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool Pool(2);
  auto Ok = Pool.enqueue([] { return 7; });
  auto Bad = Pool.enqueue(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_EQ(Ok.get(), 7);
  EXPECT_THROW(Bad.get(), std::runtime_error);
  // The pool survives a throwing job.
  EXPECT_EQ(Pool.enqueue([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I < 20; ++I)
      Pool.enqueue([&Count] { ++Count; });
  } // destructor must run every queued job before joining
  EXPECT_EQ(Count.load(), 20);
}

TEST(ThreadPoolTest, JobsEnvIsOwnedBySolverConfig) {
  const char *Saved = std::getenv("SE2GIS_JOBS");
  std::string SavedCopy = Saved ? Saved : "";
  setenv("SE2GIS_JOBS", "3", 1);
  // SolverConfig::fromEnv is the single reader of the SE2GIS_* environment;
  // the pool's own default deliberately ignores it.
  EXPECT_EQ(SolverConfig::fromEnv().Jobs, 3u);
  EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
  setenv("SE2GIS_JOBS", "not-a-number", 1);
  EXPECT_EQ(SolverConfig::fromEnv().Jobs, 0u);
  if (Saved)
    setenv("SE2GIS_JOBS", SavedCopy.c_str(), 1);
  else
    unsetenv("SE2GIS_JOBS");
}

// --- PerfCounters -------------------------------------------------------===//

TEST(PerfCountersTest, AccumulatesUnderConcurrency) {
  PerfSnapshot Before = snapshotPerf();
  std::vector<std::thread> Threads;
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([] {
      for (int I = 0; I < 10000; ++I)
        perfAdd(PerfCounter::EnumCandidates);
      perfAddTimeNs(PerfTimer::Z3SolveNs, 1000);
    });
  for (std::thread &T : Threads)
    T.join();
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_EQ(Delta.get(PerfCounter::EnumCandidates), 80000u);
  EXPECT_GE(Delta.getNs(PerfTimer::Z3SolveNs), 8000u);
}

TEST(PerfCountersTest, TimerScopeAddsElapsedTime) {
  PerfSnapshot Before = snapshotPerf();
  {
    PerfTimerScope Scope(PerfTimer::SuiteRunNs);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GE(Delta.getMs(PerfTimer::SuiteRunNs), 4.0);
}

TEST(PerfCountersTest, JsonContainsEveryField) {
  std::ostringstream OS;
  writePerfJson(OS, PerfSnapshot());
  std::string J = OS.str();
  for (const char *Key :
       {"smt_queries", "smt_sat", "smt_unsat", "smt_unknown",
        "smt_budget_expired", "z3_time_ms", "run_time_ms", "enum_candidates",
        "enum_pruned"})
    EXPECT_NE(J.find(Key), std::string::npos) << Key;
}

// --- Parallel runner determinism ----------------------------------------===//

SuiteOptions subSuiteOptions() {
  SuiteOptions Opts;
  Opts.Config.Algo.TimeoutMs = 20000;
  Opts.Algorithms = {AlgorithmKind::SE2GIS};
  Opts.Config.Filter = "sortedlist/m"; // min, max, min_max: a fast sub-suite
  Opts.Config.Verbose = false;
  return Opts;
}

TEST(RunnerParallelTest, ParallelMatchesSequential) {
  SuiteOptions Sequential = subSuiteOptions();
  Sequential.Config.Jobs = 1;
  std::vector<SuiteRecord> A = runSuite(Sequential);

  SuiteOptions Parallel = subSuiteOptions();
  Parallel.Config.Jobs = 4;
  std::vector<SuiteRecord> B = runSuite(Parallel);

  ASSERT_GE(A.size(), 2u) << "filter no longer matches a multi-benchmark "
                             "sub-suite; update the test";
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Def->Name, B[I].Def->Name) << "record order diverged";
    EXPECT_EQ(A[I].Algorithm, B[I].Algorithm);
    EXPECT_EQ(A[I].Result.V, B[I].Result.V) << A[I].Def->Name;
  }
}

TEST(RunnerParallelTest, WritesPerfJsonSummary) {
  SuiteOptions Opts = subSuiteOptions();
  Opts.Config.Filter = "sortedlist/min"; // min + min_max
  Opts.Config.Jobs = 2;
  Opts.Config.PerfJsonPath = ::testing::TempDir() + "se2gis_perf_test.json";
  std::vector<SuiteRecord> Records = runSuite(Opts);
  ASSERT_FALSE(Records.empty());

  std::ifstream In(Opts.Config.PerfJsonPath);
  ASSERT_TRUE(In.good()) << "summary not written to " << Opts.Config.PerfJsonPath;
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string J = Buf.str();
  EXPECT_NE(J.find("\"suite\""), std::string::npos);
  EXPECT_NE(J.find("\"jobs\": 2"), std::string::npos);
  EXPECT_NE(J.find("\"smt_queries\""), std::string::npos);
  EXPECT_NE(J.find("sortedlist/min"), std::string::npos);
  // The sweep really went through the SMT stack.
  EXPECT_EQ(J.find("\"smt_queries\":0,"), std::string::npos);
  std::remove(Opts.Config.PerfJsonPath.c_str());
}

} // namespace
