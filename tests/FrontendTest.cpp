//===- FrontendTest.cpp - Lexer, parser, and elaborator tests -------------===//

#include "frontend/Elaborate.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "support/Diagnostics.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

TEST(LexerTest, BasicTokens) {
  auto Toks = tokenize("let rec f = function | Cons (a, l) -> a + 1");
  ASSERT_GE(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Kind, TokKind::KwLet);
  EXPECT_EQ(Toks[1].Kind, TokKind::KwRec);
  EXPECT_EQ(Toks.back().Kind, TokKind::Eof);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Toks = tokenize("a (* comment (* nested *) *) b -- line\nc");
  ASSERT_EQ(Toks.size(), 4u); // a b c eof
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[2].Text, "c");
}

TEST(LexerTest, TwoCharOperators) {
  auto Toks = tokenize("<> <= >= && || ->");
  EXPECT_EQ(Toks[0].Kind, TokKind::NotEq);
  EXPECT_EQ(Toks[1].Kind, TokKind::Le);
  EXPECT_EQ(Toks[2].Kind, TokKind::Ge);
  EXPECT_EQ(Toks[3].Kind, TokKind::AmpAmp);
  EXPECT_EQ(Toks[4].Kind, TokKind::BarBar);
  EXPECT_EQ(Toks[5].Kind, TokKind::Arrow);
}

TEST(LexerTest, BadCharacterRaises) {
  EXPECT_THROW(tokenize("let ~ x"), UserError);
  EXPECT_THROW(tokenize("(* unterminated"), UserError);
}

TEST(ParserTest, TypeDeclaration) {
  SynUnit U = parseUnit("type tree = Leaf of int | Node of int * tree * tree");
  ASSERT_EQ(U.Types.size(), 1u);
  EXPECT_EQ(U.Types[0].Name, "tree");
  ASSERT_EQ(U.Types[0].Ctors.size(), 2u);
  EXPECT_EQ(U.Types[0].Ctors[0].Fields.size(), 1u);
  EXPECT_EQ(U.Types[0].Ctors[1].Fields.size(), 3u);
}

TEST(ParserTest, DirectiveForms) {
  SynUnit U = parseUnit("synthesize t equiv f via r requires inv ensures e");
  ASSERT_EQ(U.Directives.size(), 1u);
  EXPECT_EQ(U.Directives[0].Target, "t");
  EXPECT_EQ(U.Directives[0].Reference, "f");
  EXPECT_EQ(U.Directives[0].Repr, "r");
  EXPECT_EQ(U.Directives[0].Invariant, "inv");
  EXPECT_EQ(U.Directives[0].Ensures, "e");

  SynUnit U2 = parseUnit("synthesize t equiv f");
  EXPECT_TRUE(U2.Directives[0].Repr.empty());
  EXPECT_TRUE(U2.Directives[0].Invariant.empty());
}

TEST(ParserTest, OperatorPrecedence) {
  SynUnit U = parseUnit("let f (x : int) = 1 + 2 * 3 = 7 && true");
  ASSERT_EQ(U.LetGroups.size(), 1u);
  const SynExpr &Body = *U.LetGroups[0].Bindings[0].Body;
  // Top node should be &&.
  EXPECT_EQ(Body.K, SynExpr::Kind::Binary);
  EXPECT_EQ(Body.Name, "&&");
  // Left: (1 + (2*3)) = 7.
  EXPECT_EQ(Body.Args[0]->Name, "=");
  EXPECT_EQ(Body.Args[0]->Args[0]->Name, "+");
}

TEST(ParserTest, UnannotatedParamRejected) {
  EXPECT_THROW(parseUnit("let f x = x + 1"), UserError);
}

TEST(ElaborateTest, LoadsMinSortedProblem) {
  Problem P = loadProblem(se2gis_tests::kMinSortedSrc);
  EXPECT_EQ(P.Reference, "lmin");
  EXPECT_EQ(P.Target, "mins");
  EXPECT_EQ(P.Invariant, "sorted");
  EXPECT_EQ(P.Theta->getName(), "list");
  EXPECT_EQ(P.Unknowns.size(), 2u);
  EXPECT_TRUE(P.RetTy->isInt());
  // An identity repr was auto-generated.
  EXPECT_NE(P.Prog->findFunction(P.Repr), nullptr);
}

TEST(ElaborateTest, ReturnTypeInferenceThroughMutualRecursion) {
  // `sorted` calls `head`, whose base rule fixes its return type.
  Problem P = loadProblem(se2gis_tests::kMinSortedSrc);
  const RecFunction *Sorted = P.Prog->findFunction("sorted");
  ASSERT_NE(Sorted, nullptr);
  EXPECT_TRUE(Sorted->getReturnType()->isBool());
  const RecFunction *Head = P.Prog->findFunction("head");
  ASSERT_NE(Head, nullptr);
  EXPECT_TRUE(Head->getReturnType()->isInt());
}

TEST(ElaborateTest, TupleReturnsAndLetDestructuring) {
  const char *Src = R"(
type list = Nil | Cons of int * list

let rec mts = function
  | Nil -> (0, 0)
  | Cons (a, l) ->
    let m, s = mts l in
    (max 0 (m + a), s + a)

let rec target : int * int = function
  | Nil -> $f0
  | Cons (a, l) -> $f1 a (target l)

synthesize target equiv mts
)";
  Problem P = loadProblem(Src);
  const RecFunction *Mts = P.Prog->findFunction("mts");
  ASSERT_NE(Mts, nullptr);
  EXPECT_TRUE(Mts->getReturnType()->isTuple());
  EXPECT_EQ(P.Unknowns.size(), 2u);
  EXPECT_TRUE(P.findUnknown("f0")->RetTy->isTuple());
}

TEST(ElaborateTest, UnknownReturnTypeRequiresAnnotation) {
  const char *Src = R"(
type list = Nil | Cons of int * list
let rec f = function
  | Nil -> 0
  | Cons (a, l) -> a + f l
let rec t = function
  | Nil -> $u0
  | Cons (a, l) -> $u1 a (t l)
synthesize t equiv f
)";
  EXPECT_THROW(loadProblem(Src), UserError);
}

TEST(ElaborateTest, ExtraParamsWithPassThrough) {
  const char *Src = R"(
type tree = Leaf of int | Node of int * tree * tree

let rec count (x : int) = function
  | Leaf a -> if a = x then 1 else 0
  | Node (a, l, r) -> count x l + count x r + (if a = x then 1 else 0)

let rec target (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) -> $u2 x a (target x l) (target x r)

synthesize target equiv count
)";
  Problem P = loadProblem(Src);
  EXPECT_EQ(P.ExtraParamTypes.size(), 1u);
  EXPECT_EQ(P.Unknowns.size(), 2u);
  EXPECT_EQ(P.findUnknown("u2")->ArgTypes.size(), 4u);
}

TEST(ElaborateTest, PassThroughViolationRejected) {
  const char *Src = R"(
type tree = Leaf of int | Node of int * tree * tree

let rec count (x : int) = function
  | Leaf a -> if a = x then 1 else 0
  | Node (a, l, r) -> count a l + count x r

let rec target (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) -> $u2 x a (target x l) (target x r)

synthesize target equiv count
)";
  EXPECT_THROW(loadProblem(Src), UserError);
}

TEST(ElaborateTest, UndefinedNamesRejected) {
  EXPECT_THROW(loadProblem("synthesize a equiv b"), UserError);
  EXPECT_THROW(loadProblem("type t = A of unknown_type\n"
                           "synthesize a equiv b"),
               UserError);
}

TEST(ElaborateTest, IncompleteSchemeRejected) {
  const char *Src = R"(
type list = Nil | Cons of int * list
let rec f = function
  | Nil -> 0
synthesize f equiv f
)";
  EXPECT_THROW(loadProblem(Src), UserError);
}

} // namespace
