//===- SplitIteTest.cpp - Equation path-splitting tests -------------------===//

#include "core/SplitIte.h"

#include "ast/Simplify.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

TEST(SplitIteTest, SplitsTopLevelConditional) {
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr V = freshVar("v", Type::intTy());
  TermPtr Cond = mkOp(OpKind::Lt, {mkVar(A), mkVar(X)});
  SgeEquation E;
  E.Guard = mkTrue();
  E.Lhs = mkIte(Cond, mkUnknown("u1", Type::intTy(), {mkVar(V)}),
                mkUnknown("u2", Type::intTy(), {mkVar(X), mkVar(A)}));
  E.Rhs = mkAdd(mkVar(V), mkIntLit(1));
  E.TermIndex = 7;

  auto Split = splitEquation(E);
  ASSERT_EQ(Split.size(), 2u);
  for (const SgeEquation &S : Split) {
    // Each branch's lhs is a bare unknown application.
    EXPECT_EQ(S.Lhs->getKind(), TermKind::Unknown);
    // Guards carry the condition (possibly negated).
    EXPECT_NE(S.Guard->str(), "true");
    // The originating term index is preserved.
    EXPECT_EQ(S.TermIndex, 7u);
  }
}

TEST(SplitIteTest, SpecializesRhsUnderTheSameCondition) {
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr V = freshVar("v", Type::intTy());
  TermPtr Cond = mkOp(OpKind::Lt, {mkVar(A), mkVar(X)});
  SgeEquation E;
  E.Guard = mkTrue();
  E.Lhs = mkIte(Cond, mkUnknown("u1", Type::intTy(), {mkVar(V)}),
                mkUnknown("u2", Type::intTy(), {mkVar(A)}));
  // rhs mentions the same condition: ite(a<x, 1, 0) + v.
  E.Rhs = mkAdd(mkIte(Cond, mkIntLit(1), mkIntLit(0)), mkVar(V));
  auto Split = splitEquation(E);
  ASSERT_EQ(Split.size(), 2u);
  // Each specialized rhs must be ite-free.
  for (const SgeEquation &S : Split) {
    bool HasIte = false;
    visitTerm(S.Rhs, [&](const TermPtr &N) {
      if (N->getKind() == TermKind::Op && N->getOp() == OpKind::Ite)
        HasIte = true;
      return true;
    });
    EXPECT_FALSE(HasIte) << S.Rhs->str();
  }
}

TEST(SplitIteTest, LeavesUnknownConditionsAlone) {
  VarPtr A = freshVar("a", Type::intTy());
  SgeEquation E;
  E.Guard = mkTrue();
  E.Lhs = mkIte(mkOp(OpKind::Gt, {mkUnknown("c", Type::intTy(), {}),
                                  mkIntLit(0)}),
                mkUnknown("u1", Type::intTy(), {mkVar(A)}),
                mkUnknown("u2", Type::intTy(), {mkVar(A)}));
  E.Rhs = mkVar(A);
  auto Split = splitEquation(E);
  ASSERT_EQ(Split.size(), 1u);
  EXPECT_TRUE(termEquals(Split[0].Lhs, E.Lhs));
}

TEST(SplitIteTest, NoIteMeansIdentity) {
  VarPtr A = freshVar("a", Type::intTy());
  SgeEquation E;
  E.Guard = mkTrue();
  E.Lhs = mkUnknown("u", Type::intTy(), {mkVar(A)});
  E.Rhs = mkVar(A);
  auto Split = splitEquation(E);
  ASSERT_EQ(Split.size(), 1u);
  EXPECT_TRUE(termEquals(Split[0].Lhs, E.Lhs));
  EXPECT_TRUE(termEquals(Split[0].Guard, E.Guard));
}

TEST(SplitIteTest, NestedConditionalsSplitToFourBranches) {
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr B = freshVar("b", Type::intTy());
  TermPtr C1 = mkOp(OpKind::Lt, {mkVar(A), mkIntLit(0)});
  TermPtr C2 = mkOp(OpKind::Lt, {mkVar(B), mkIntLit(0)});
  SgeEquation E;
  E.Guard = mkTrue();
  E.Lhs = mkIte(
      C1, mkIte(C2, mkUnknown("u1", Type::intTy(), {}),
                mkUnknown("u2", Type::intTy(), {})),
      mkUnknown("u3", Type::intTy(), {mkVar(A)}));
  E.Rhs = mkVar(A);
  auto Split = splitEquation(E);
  // a<0 splits; the then-branch splits again on b<0: three leaves.
  EXPECT_EQ(Split.size(), 3u);
}

} // namespace
