//===- DeadlineTest.cpp - Cancellation and budget subsystem tests ---------===//
///
/// \file
/// Covers the cooperative cancellation subsystem end to end: token
/// semantics, the Z3 budget mapping (queryBudgetMs and the SmtQuery
/// short-circuit), and the termination contract — a diverging synthesis
/// run must come back as a Timeout verdict within a small multiple of its
/// deadline, with partial stats and without hanging any worker.
///
//===----------------------------------------------------------------------===//

#include "core/SynthesisTask.h"
#include "frontend/Elaborate.h"
#include "smt/Solver.h"
#include "support/Cancellation.h"
#include "support/PerfCounters.h"
#include "support/Stopwatch.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

using namespace se2gis;

namespace {

// --- CancellationToken --------------------------------------------------===//

TEST(CancellationTokenTest, EmptyTokenIsInert) {
  CancellationToken T;
  EXPECT_FALSE(T.valid());
  EXPECT_FALSE(T.cancelRequested());
  T.requestCancel(); // no-op, must not crash
  EXPECT_FALSE(T.cancelRequested());
  EXPECT_EQ(T.reason(), CancelReason::None);
}

TEST(CancellationTokenTest, CopiesShareState) {
  CancellationToken A = CancellationToken::create();
  CancellationToken B = A;
  EXPECT_TRUE(A.valid());
  EXPECT_FALSE(B.cancelRequested());
  A.requestCancel(CancelReason::DeadlineExceeded);
  EXPECT_TRUE(B.cancelRequested());
  EXPECT_EQ(B.reason(), CancelReason::DeadlineExceeded);
}

TEST(CancellationTokenTest, FirstReasonWins) {
  CancellationToken T = CancellationToken::create();
  T.requestCancel(CancelReason::Cancelled);
  T.requestCancel(CancelReason::DeadlineExceeded);
  EXPECT_EQ(T.reason(), CancelReason::Cancelled);
}

TEST(CancellationTokenTest, TokenExpiresDeadline) {
  CancellationToken T = CancellationToken::create();
  Deadline D; // unlimited
  D.setToken(T);
  EXPECT_FALSE(D.expired());
  T.requestCancel();
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.remainingMs(), 0);
}

// --- The Z3 budget mapping ----------------------------------------------===//

TEST(DeadlineBudgetTest, UnlimitedDeadlineKeepsPerQueryBudget) {
  Deadline D;
  EXPECT_EQ(D.queryBudgetMs(600), 600);
}

TEST(DeadlineBudgetTest, RemainingTimeClampsPerQueryBudget) {
  Deadline D = Deadline::afterMs(200);
  int B = D.queryBudgetMs(60000);
  EXPECT_GT(B, 0);
  EXPECT_LE(B, 200);
}

TEST(DeadlineBudgetTest, ExpiredDeadlineYieldsZeroBudget) {
  Deadline D = Deadline::afterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(D.queryBudgetMs(600), 0);

  CancellationToken T = CancellationToken::create();
  Deadline D2;
  D2.setToken(T);
  T.requestCancel();
  EXPECT_EQ(D2.queryBudgetMs(600), 0);
}

TEST(DeadlineBudgetTest, NonPositiveBudgetIsUnlimited) {
  Deadline D = Deadline::afterMs(0);
  EXPECT_FALSE(D.expired());
  EXPECT_EQ(D.queryBudgetMs(600), 600);
}

TEST(DeadlineBudgetTest, SmtQueryShortCircuitsOnExpiredDeadline) {
  Deadline D = Deadline::afterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  VarPtr X = freshVar("x", Type::intTy());
  PerfSnapshot Before = snapshotPerf();
  SmtQuery Q;
  Q.setDeadline(D);
  Q.add(mkEq(mkVar(X), mkIntLit(1)));
  // The query must not even enter Z3: Unknown, accounted as budget expiry.
  EXPECT_EQ(Q.checkSat(60000), SmtResult::Unknown);
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_EQ(Delta.get(PerfCounter::SmtBudget), 1u);
  EXPECT_EQ(Delta.getNs(PerfTimer::Z3SolveNs), 0u);
}

TEST(DeadlineBudgetTest, QuickCheckHonoursBudget) {
  Deadline D = Deadline::afterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  VarPtr X = freshVar("x", Type::intTy());
  EXPECT_EQ(quickCheck({mkEq(mkVar(X), mkIntLit(1))}, 60000, nullptr, &D),
            SmtResult::Unknown);
}

// --- Termination contract -----------------------------------------------===//

/// Plain SEGIS on an unrealizable problem never concludes (it keeps
/// unrolling bounded terms), so it diverges until the deadline fires — the
/// canonical diverging run.
std::shared_ptr<const Problem> divergingProblem() {
  return std::make_shared<const Problem>(
      loadProblem(se2gis_tests::kMinUnsortedSrc));
}

TEST(DeadlineTest, DivergingRunTimesOutPromptly) {
  SolverConfig Config;
  Config.Algo.TimeoutMs = 1000;
  SynthesisTask Task(divergingProblem(), AlgorithmKind::SEGIS);

  Stopwatch Timer;
  Outcome R = Task.run(Config);
  double Elapsed = Timer.elapsedMs();

  EXPECT_EQ(R.V, Verdict::Timeout);
  // The overshoot is bounded by one per-query Z3 slice plus polling
  // latency: well under 2x the deadline, with slack for loaded machines.
  EXPECT_LT(Elapsed, 2.5 * Config.Algo.TimeoutMs) << "run overshot deadline";
  // Graceful degradation: the timed-out run still reports how far it got.
  EXPECT_GT(R.Stats.Refinements + R.Stats.Coarsenings, 0);
}

TEST(DeadlineTest, TokenCancelsRunningTask) {
  SolverConfig Config;
  Config.Algo.TimeoutMs = 0; // unlimited: only the token can stop the run
  Config.Algo.Token = CancellationToken::create();
  SynthesisTask Task(divergingProblem(), AlgorithmKind::SEGIS);

  Stopwatch Timer;
  std::thread Canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    Config.Algo.Token.requestCancel();
  });
  Outcome R = Task.run(Config);
  Canceller.join();

  EXPECT_EQ(R.V, Verdict::Timeout);
  EXPECT_LT(Timer.elapsedMs(), 5000) << "cancellation did not propagate";
}

TEST(DeadlineTest, PollGateDecimatesChecks) {
  CancellationToken T = CancellationToken::create();
  Deadline D;
  D.setToken(T);
  T.requestCancel();
  PollGate Gate(4);
  int Hits = 0;
  for (int I = 0; I < 16; ++I)
    Hits += Gate.tick(D);
  EXPECT_EQ(Hits, 4); // expired deadline observed once per stride
}

} // namespace
