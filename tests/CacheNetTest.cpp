//===- CacheNetTest.cpp - Shared cache tier tests -------------------------===//
//
// Covers src/cachenet/: the cache daemon's protocol surface (get/put/
// stats/drain, admission negatives, frame-level negatives), the
// RemoteStore client (read-through miss/hit, circuit-breaker transitions
// against a dead-then-revived daemon, write-behind flush), the
// CacheConfig remote tier (remote hit populated downward into the local
// DiskStore), concurrent multi-client traffic, and the soundness
// property the whole tier leans on: a poisoned remote entry is
// re-validated on reuse and can never change a verdict.
//
//===----------------------------------------------------------------------===//

#include "ast/Term.h"
#include "cache/CacheConfig.h"
#include "cachenet/CacheDaemon.h"
#include "cachenet/RemoteStore.h"
#include "service/Json.h"
#include "service/Protocol.h"
#include "suite/Runner.h"
#include "support/PerfCounters.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace se2gis;

namespace {

namespace fs = std::filesystem;

/// Each test gets a private scratch directory (daemon store + node cache
/// dirs + the unix socket) and a clean process-wide cache state.
class CacheNetTest : public ::testing::Test {
protected:
  void SetUp() override {
    shutdownCache();
    Root = (fs::temp_directory_path() /
            ("se2gis-cachenet-" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
             "-" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed())))
               .string();
    fs::remove_all(Root);
    fs::create_directories(Root);
  }
  void TearDown() override {
    shutdownCache();
    fs::remove_all(Root);
  }

  std::string path(const std::string &Leaf) { return Root + "/" + Leaf; }

  /// Starts an in-process daemon on a unix socket under the scratch dir.
  std::unique_ptr<CacheDaemon> startDaemon(const std::string &Tag,
                                           CacheDaemonConfig Config = {}) {
    Config.Listen = "unix:" + path(Tag + ".sock");
    Config.Dir = path(Tag + ".store");
    Config.Log.Level = LogLevel::Error;
    auto D = std::make_unique<CacheDaemon>(std::move(Config));
    std::string Error;
    if (!D->start(Error)) {
      ADD_FAILURE() << "daemon start: " << Error;
      return nullptr;
    }
    RunThreads.emplace_back([Ptr = D.get()] { Ptr->run(); });
    return D;
  }

  void stopDaemon(CacheDaemon &D) { D.drain(); }

  /// Joins the run() threads of every daemon started in this test. Call
  /// after drain()ing them.
  void joinDaemons() {
    for (std::thread &T : RunThreads)
      if (T.joinable())
        T.join();
    RunThreads.clear();
  }

  std::string Root;
  std::vector<std::thread> RunThreads;
};

/// Blocking one-shot request against \p Addr; fails the test on transport
/// problems.
JsonValue rawCall(const ServiceAddr &Addr, const JsonValue &Req) {
  std::string Error;
  int Fd = connectTo(Addr, Error, /*TimeoutMs=*/2000);
  EXPECT_GE(Fd, 0) << Error;
  JsonValue Resp;
  if (Fd >= 0) {
    setFdIoTimeout(Fd, 5000);
    std::string Payload;
    EXPECT_TRUE(writeFrame(Fd, Req.dump()));
    EXPECT_EQ(readFrame(Fd, Payload), FrameStatus::Ok);
    EXPECT_TRUE(JsonValue::parse(Payload, Resp, Error)) << Error;
    closeFd(Fd);
  }
  return Resp;
}

JsonValue makeGet(const std::string &Segment, const std::string &KeyHex) {
  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("cache.get"));
  Req.set("segment", JsonValue::str(Segment));
  Req.set("key", JsonValue::str(KeyHex));
  return Req;
}

JsonValue makePut(const std::string &Segment, const std::string &KeyHex,
                  const std::string &Payload) {
  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str("cache.put"));
  Req.set("segment", JsonValue::str(Segment));
  Req.set("key", JsonValue::str(KeyHex));
  Req.set("payload", JsonValue::str(Payload));
  return Req;
}

std::string errorCodeOf(const JsonValue &Resp) {
  const JsonValue *E = Resp.get("error");
  return E ? E->getString("code") : "";
}

Hash128 keyOf(unsigned char Tag) {
  std::string Hex(32, '0');
  static const char Digits[] = "0123456789abcdef";
  Hex[30] = Digits[(Tag >> 4) & 0xf];
  Hex[31] = Digits[Tag & 0xf];
  Hash128 K{};
  EXPECT_TRUE(Hash128::fromHex(Hex, K));
  return K;
}

} // namespace

//===----------------------------------------------------------------------===//
// Segment-name admission
//===----------------------------------------------------------------------===//

TEST(CacheNetNames, SegmentCharsetIsStrict) {
  EXPECT_TRUE(validCacheSegmentName("smt"));
  EXPECT_TRUE(validCacheSegmentName("suite"));
  EXPECT_TRUE(validCacheSegmentName("a0-z9_x"));
  EXPECT_FALSE(validCacheSegmentName(""));
  EXPECT_FALSE(validCacheSegmentName("SMT"));          // uppercase
  EXPECT_FALSE(validCacheSegmentName("../etc"));       // traversal
  EXPECT_FALSE(validCacheSegmentName("a/b"));          // separator
  EXPECT_FALSE(validCacheSegmentName("a.b"));          // dot
  EXPECT_FALSE(validCacheSegmentName(std::string(65, 'a'))); // too long
}

//===----------------------------------------------------------------------===//
// Daemon protocol surface
//===----------------------------------------------------------------------===//

TEST_F(CacheNetTest, DaemonGetPutStatsDrain) {
  auto D = startDaemon("d");
  ASSERT_NE(D, nullptr);
  const ServiceAddr &A = D->addr();
  Hash128 K = keyOf(1);

  // Miss first.
  JsonValue R = rawCall(A, makeGet("smt", K.hex()));
  EXPECT_TRUE(R.getBool("ok"));
  EXPECT_FALSE(R.getBool("found"));

  // Put, then hit with the same bytes.
  R = rawCall(A, makePut("smt", K.hex(), "payload-bytes"));
  EXPECT_TRUE(R.getBool("ok"));
  EXPECT_TRUE(R.getBool("stored"));
  R = rawCall(A, makeGet("smt", K.hex()));
  EXPECT_TRUE(R.getBool("ok"));
  EXPECT_TRUE(R.getBool("found"));
  EXPECT_EQ(R.getString("payload"), "payload-bytes");

  // Content-addressed dedup: the second identical put is acknowledged but
  // not re-stored.
  R = rawCall(A, makePut("smt", K.hex(), "payload-bytes"));
  EXPECT_TRUE(R.getBool("ok"));
  EXPECT_FALSE(R.getBool("stored"));

  R = rawCall(A, JsonValue::object().set("method", JsonValue::str("ping")));
  EXPECT_TRUE(R.getBool("ok"));
  EXPECT_EQ(R.getString("role"), "cached");

  R = rawCall(A,
              JsonValue::object().set("method", JsonValue::str("cache.stats")));
  EXPECT_TRUE(R.getBool("ok"));
  EXPECT_EQ(R.getInt("gets"), 2);
  EXPECT_EQ(R.getInt("hits"), 1);
  EXPECT_EQ(R.getInt("misses"), 1);
  EXPECT_EQ(R.getInt("puts"), 2);
  EXPECT_EQ(R.getInt("puts_stored"), 1);
  EXPECT_EQ(R.getInt("entries"), 1);

  // The daemon's own Prometheus exposition carries the same counters.
  std::string Metrics = D->renderMetrics();
  EXPECT_NE(Metrics.find("se2gis_cached_hits_total 1"), std::string::npos)
      << Metrics;
  EXPECT_NE(Metrics.find("se2gis_cached_entries{segment=\"smt\"} 1"),
            std::string::npos)
      << Metrics;

  stopDaemon(*D);
  joinDaemons();

  // Restarting on the same directory reloads the entry (same DiskStore
  // format as a node cache dir).
  CacheDaemonConfig C2;
  C2.Listen = "unix:" + path("d2.sock");
  C2.Dir = path("d.store");
  C2.Log.Level = LogLevel::Error;
  CacheDaemon D2(std::move(C2));
  std::string Error;
  ASSERT_TRUE(D2.start(Error)) << Error;
  std::thread T([&D2] { D2.run(); });
  R = rawCall(D2.addr(), makeGet("smt", K.hex()));
  EXPECT_TRUE(R.getBool("found"));
  EXPECT_EQ(R.getString("payload"), "payload-bytes");
  D2.drain();
  T.join();
}

TEST_F(CacheNetTest, DaemonAdmissionNegatives) {
  CacheDaemonConfig Config;
  Config.MaxPayloadBytes = 64; // tiny bound to exercise rejection
  auto D = startDaemon("d", std::move(Config));
  ASSERT_NE(D, nullptr);
  const ServiceAddr &A = D->addr();
  std::string GoodKey = keyOf(2).hex();

  // Hostile segment names are refused, not turned into file paths.
  EXPECT_EQ(errorCodeOf(rawCall(A, makeGet("../../etc", GoodKey))),
            "bad_request");
  EXPECT_EQ(errorCodeOf(rawCall(A, makePut("a/b", GoodKey, "x"))),
            "bad_request");
  // Keys must be exactly 32 hex chars.
  EXPECT_EQ(errorCodeOf(rawCall(A, makeGet("smt", "zz"))), "bad_request");
  EXPECT_EQ(errorCodeOf(rawCall(A, makePut("smt", "abc", "x"))),
            "bad_request");
  // Payloads over the admission bound are refused as bad_request (the
  // frame itself is fine — this is the entry bound, not the frame bound).
  EXPECT_EQ(errorCodeOf(
                rawCall(A, makePut("smt", GoodKey, std::string(65, 'p')))),
            "bad_request");
  // Unknown method.
  EXPECT_EQ(errorCodeOf(rawCall(
                A, JsonValue::object().set("method", JsonValue::str("nope")))),
            "unknown_method");

  // Nothing above got stored.
  JsonValue R = rawCall(
      A, JsonValue::object().set("method", JsonValue::str("cache.stats")));
  EXPECT_EQ(R.getInt("entries"), 0);
  EXPECT_GE(R.getInt("rejected"), 5);

  // After drain, puts are refused with the typed draining error (via a
  // connection opened before the drain completes the socket teardown).
  stopDaemon(*D);
  joinDaemons();
}

TEST_F(CacheNetTest, DaemonFrameNegatives) {
  auto D = startDaemon("d");
  ASSERT_NE(D, nullptr);
  const ServiceAddr &A = D->addr();
  std::string Error;

  // Oversized frame announcement: typed error response, then hangup.
  {
    int Fd = connectTo(A, Error, 2000);
    ASSERT_GE(Fd, 0) << Error;
    setFdIoTimeout(Fd, 5000);
    std::uint32_t Huge = htonl(kMaxFrameBytes + 1);
    ASSERT_EQ(::write(Fd, &Huge, 4), 4);
    std::string Payload;
    ASSERT_EQ(readFrame(Fd, Payload), FrameStatus::Ok);
    JsonValue Resp;
    ASSERT_TRUE(JsonValue::parse(Payload, Resp, Error));
    EXPECT_FALSE(Resp.getBool("ok"));
    EXPECT_EQ(errorCodeOf(Resp), "oversized_frame");
    // The stream cannot be resynchronized: the daemon hangs up.
    EXPECT_EQ(readFrame(Fd, Payload), FrameStatus::Eof);
    closeFd(Fd);
  }

  // Truncated frame: announce 100 bytes, send 3, close. The daemon must
  // drop the connection without dying.
  {
    int Fd = connectTo(A, Error, 2000);
    ASSERT_GE(Fd, 0) << Error;
    std::uint32_t Len = htonl(100);
    ASSERT_EQ(::write(Fd, &Len, 4), 4);
    ASSERT_EQ(::write(Fd, "{\"m", 3), 3);
    closeFd(Fd);
  }

  // Non-JSON payload on a cache method: typed parse_error.
  {
    int Fd = connectTo(A, Error, 2000);
    ASSERT_GE(Fd, 0) << Error;
    setFdIoTimeout(Fd, 5000);
    ASSERT_TRUE(writeFrame(Fd, "this is not json"));
    std::string Payload;
    ASSERT_EQ(readFrame(Fd, Payload), FrameStatus::Ok);
    JsonValue Resp;
    ASSERT_TRUE(JsonValue::parse(Payload, Resp, Error));
    EXPECT_EQ(errorCodeOf(Resp), "parse_error");
    closeFd(Fd);
  }

  // Still alive and serving after all of the above.
  JsonValue R =
      rawCall(A, JsonValue::object().set("method", JsonValue::str("ping")));
  EXPECT_TRUE(R.getBool("ok"));

  stopDaemon(*D);
  joinDaemons();
}

//===----------------------------------------------------------------------===//
// RemoteStore client
//===----------------------------------------------------------------------===//

TEST_F(CacheNetTest, RemoteStoreMissPutHitAndFlush) {
  auto D = startDaemon("d");
  ASSERT_NE(D, nullptr);

  RemoteStoreOptions Opts;
  Opts.Addr = "unix:" + path("d.sock");
  std::string Error;
  auto Store = RemoteStore::create(Opts, Error);
  ASSERT_NE(Store, nullptr) << Error;

  Hash128 K = keyOf(3);
  EXPECT_FALSE(Store->get("smt", K).has_value());
  EXPECT_TRUE(Store->putSync("smt", K, "remote-payload"));
  auto Got = Store->get("smt", K);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, "remote-payload");

  // Write-behind: enqueue, flush, observe on the daemon.
  Hash128 K2 = keyOf(4);
  Store->putAsync("smt", K2, "async-payload");
  EXPECT_TRUE(Store->flush(5000));
  auto Got2 = Store->get("smt", K2);
  ASSERT_TRUE(Got2.has_value());
  EXPECT_EQ(*Got2, "async-payload");

  EXPECT_EQ(Store->breakerState(), RemoteStore::Breaker::Closed);

  // Malformed address is the one construction failure.
  RemoteStoreOptions Bad;
  Bad.Addr = "tcp:nonsense";
  EXPECT_EQ(RemoteStore::create(Bad, Error), nullptr);
  EXPECT_FALSE(Error.empty());

  stopDaemon(*D);
  joinDaemons();
}

TEST_F(CacheNetTest, BreakerOpensOnDeadDaemonAndRecloses) {
  std::string Sock = path("revive.sock");

  RemoteStoreOptions Opts;
  Opts.Addr = "unix:" + Sock;
  Opts.ConnectTimeoutMs = 100;
  Opts.RequestTimeoutMs = 200;
  Opts.MaxAttempts = 1;
  Opts.BackoffBaseMs = 1;
  Opts.BreakerThreshold = 2;
  Opts.BreakerCooldownMs = 150;
  std::string Error;
  auto Store = RemoteStore::create(Opts, Error);
  ASSERT_NE(Store, nullptr) << Error;

  PerfSnapshot Before = snapshotPerf();

  // Nothing listens: consecutive failures open the breaker.
  Hash128 K = keyOf(5);
  EXPECT_FALSE(Store->get("smt", K).has_value());
  EXPECT_FALSE(Store->get("smt", K).has_value());
  EXPECT_EQ(Store->breakerState(), RemoteStore::Breaker::Open);

  // Open breaker = near-zero-cost degraded fast fails, counted as such.
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(Store->get("smt", K).has_value());
  auto FastMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
  EXPECT_LT(FastMs, 50);

  PerfSnapshot Mid = snapshotPerf().since(Before);
  EXPECT_GE(Mid.get(PerfCounter::CacheRemoteErrors), 2u);
  EXPECT_GE(Mid.get(PerfCounter::CacheRemoteDegraded), 1u);

  // Revive a daemon on the same socket path; after the cooldown the next
  // probe goes half-open, succeeds, and closes the breaker.
  CacheDaemonConfig Config;
  Config.Listen = "unix:" + Sock;
  Config.Dir = path("revive.store");
  Config.Log.Level = LogLevel::Error;
  CacheDaemon D(std::move(Config));
  ASSERT_TRUE(D.start(Error)) << Error;
  std::thread T([&D] { D.run(); });

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(Store->get("smt", K).has_value()); // miss, but transport OK
  EXPECT_EQ(Store->breakerState(), RemoteStore::Breaker::Closed);

  EXPECT_TRUE(Store->putSync("smt", K, "after-revival"));
  auto Got = Store->get("smt", K);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, "after-revival");

  D.drain();
  T.join();
}

//===----------------------------------------------------------------------===//
// CacheConfig remote tier (read-through / write-behind / populate-down)
//===----------------------------------------------------------------------===//

TEST_F(CacheNetTest, RemoteHitPopulatesLocalTiers) {
  auto D = startDaemon("d");
  ASSERT_NE(D, nullptr);
  std::string Addr = "unix:" + path("d.sock");

  // Node A (this process, first configuration): insert an entry; the
  // write-behind fan-out ships it to the daemon.
  CacheSettings SA;
  SA.Mode = CacheMode::Remote;
  SA.Dir = path("nodeA");
  SA.Addr = Addr;
  configureCache(SA);
  Hash128 K = keyOf(6);
  persistentInsert("smt", K, "shared-entry");
  flushCache(); // drains the write-behind queue
  shutdownCache();

  // "Node B": same daemon, fresh local dir. The local probe misses, the
  // remote probe hits, and the hit lands in B's own DiskStore.
  PerfSnapshot Before = snapshotPerf();
  CacheSettings SB = SA;
  SB.Dir = path("nodeB");
  configureCache(SB);
  auto Got = persistentLookup("smt", K);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, "shared-entry");
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_EQ(Delta.get(PerfCounter::CacheRemoteHits), 1u);

  // Second lookup is local: no further remote traffic.
  ASSERT_TRUE(persistentLookup("smt", K).has_value());
  Delta = snapshotPerf().since(Before);
  EXPECT_EQ(Delta.get(PerfCounter::CacheRemoteHits), 1u);
  flushCache();
  shutdownCache();

  // The populated-down entry survives in B's store even with the daemon
  // gone: disk-only reconfigure on B's dir still hits.
  stopDaemon(*D);
  joinDaemons();
  CacheSettings SDisk;
  SDisk.Mode = CacheMode::Disk;
  SDisk.Dir = path("nodeB");
  configureCache(SDisk);
  Got = persistentLookup("smt", K);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, "shared-entry");
}

TEST_F(CacheNetTest, DeadDaemonDegradesToLocalOnly) {
  // Remote mode against an address nobody serves: configuration succeeds,
  // lookups and inserts behave exactly like Disk mode, and the breaker
  // caps the cost.
  CacheSettings S;
  S.Mode = CacheMode::Remote;
  S.Dir = path("node");
  S.Addr = "unix:" + path("nobody-home.sock");
  configureCache(S);

  Hash128 K = keyOf(7);
  EXPECT_FALSE(persistentLookup("smt", K).has_value());
  persistentInsert("smt", K, "local-value");
  auto Got = persistentLookup("smt", K);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, "local-value");
  flushCache(); // must not hang on the dead daemon
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST_F(CacheNetTest, ConcurrentMultiClientTraffic) {
  auto D = startDaemon("d");
  ASSERT_NE(D, nullptr);
  std::string Addr = "unix:" + path("d.sock");

  constexpr unsigned Clients = 4, Ops = 32;
  std::atomic<unsigned> Hits{0};
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      RemoteStoreOptions Opts;
      Opts.Addr = Addr;
      std::string Error;
      auto Store = RemoteStore::create(Opts, Error);
      ASSERT_NE(Store, nullptr) << Error;
      for (unsigned I = 0; I < Ops; ++I) {
        // Shared key space: every client writes and reads the same keys,
        // exercising concurrent dedup on one segment map.
        Hash128 K = keyOf(static_cast<unsigned char>(I % 8));
        std::string Payload = "v" + std::to_string(I % 8);
        EXPECT_TRUE(Store->putSync("smt", K, Payload));
        auto Got = Store->get("smt", K);
        ASSERT_TRUE(Got.has_value());
        EXPECT_EQ(*Got, Payload);
        ++Hits;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Hits.load(), Clients * Ops);

  JsonValue R = rawCall(
      D->addr(), JsonValue::object().set("method", JsonValue::str("cache.stats")));
  EXPECT_EQ(R.getInt("entries"), 8); // 8 distinct keys, last-wins dedup
  EXPECT_EQ(R.getInt("gets"), static_cast<std::int64_t>(Clients * Ops));

  stopDaemon(*D);
  joinDaemons();
}

//===----------------------------------------------------------------------===//
// Soundness: a poisoned remote entry cannot change a verdict
//===----------------------------------------------------------------------===//

namespace {

/// Builds a well-formed but wrong warm-start payload for \p P: every
/// unknown gets a trivially-typed body (a parameter of the return type, or
/// a constant). \returns "" when no such body exists for some unknown.
std::string wrongSolutionPayload(const Problem &P) {
  UnknownBindings Sol;
  for (const UnknownSig &Sig : P.Unknowns) {
    std::vector<VarPtr> Params;
    for (size_t I = 0; I < Sig.ArgTypes.size(); ++I)
      Params.push_back(namedVar("w" + std::to_string(I), Sig.ArgTypes[I]));
    TermPtr Body;
    for (const VarPtr &V : Params)
      if (V->Ty->str() == Sig.RetTy->str()) {
        Body = mkVar(V);
        break;
      }
    if (!Body && Sig.RetTy->isInt())
      Body = mkIntLit(41);
    if (!Body && Sig.RetTy->isBool())
      Body = mkBoolLit(false);
    if (!Body)
      return "";
    Sol[Sig.Name] = UnknownDef{std::move(Params), std::move(Body)};
  }
  return encodeSuiteSolution(P, Sol);
}

} // namespace

TEST_F(CacheNetTest, PoisonedRemoteEntryCannotFlipVerdict) {
  auto D = startDaemon("d");
  ASSERT_NE(D, nullptr);
  std::string Addr = "unix:" + path("d.sock");

  // An unrealizable benchmark: any warm-start entry claiming Realizable is
  // a lie, and re-verification must catch it.
  const BenchmarkDef *Def = findBenchmark("unreal/min_no_invariant");
  ASSERT_NE(Def, nullptr);
  ASSERT_FALSE(Def->ExpectRealizable);
  Problem P = loadBenchmark(*Def);

  SuiteOptions Opts;
  Opts.Config.Algo.TimeoutMs = 15000;
  Opts.Config.Filter = Def->Name;
  Opts.Config.Verbose = false;
  Opts.Config.Cache.Mode = CacheMode::Remote;
  Opts.Config.Cache.Dir = path("node");
  Opts.Config.Cache.Addr = Addr;
  Opts.Algorithms = {AlgorithmKind::SE2GIS};

  // Poison the daemon under the exact warm-start key the runner computes,
  // with (a) a decodable-but-wrong solution and (b) garbage bytes for a
  // second algorithm's key.
  Hash128 Key =
      suiteWarmStartKey(*Def, AlgorithmKind::SE2GIS, Opts.Config);
  std::string Poison = wrongSolutionPayload(P);
  ASSERT_FALSE(Poison.empty());
  // The wrong payload must actually decode — otherwise this test would
  // only cover the decoder-reject path.
  ASSERT_TRUE(decodeSuiteSolution(P, Poison).has_value());
  {
    RemoteStoreOptions ROpts;
    ROpts.Addr = Addr;
    std::string Error;
    auto Store = RemoteStore::create(ROpts, Error);
    ASSERT_NE(Store, nullptr) << Error;
    ASSERT_TRUE(Store->putSync("suite", Key, Poison));
    Hash128 GarbageKey =
        suiteWarmStartKey(*Def, AlgorithmKind::SEGISUC, Opts.Config);
    ASSERT_TRUE(Store->putSync("suite", GarbageKey, "v1\nnot a solution"));
  }

  // Run the sweep: the poisoned entry is fetched from the daemon
  // (cache_remote_hits > 0), fails re-verification, and the benchmark is
  // solved normally — the verdict is unchanged.
  PerfSnapshot Before = snapshotPerf();
  auto Recs = runSuite(Opts);
  PerfSnapshot Delta = snapshotPerf().since(Before);

  ASSERT_EQ(Recs.size(), 1u);
  EXPECT_EQ(Recs[0].Result.V, Verdict::Unrealizable) << Recs[0].Result.Detail;
  EXPECT_NE(Recs[0].Result.Ev.Source, VerdictSource::Cache);
  EXPECT_GE(Delta.get(PerfCounter::CacheRemoteHits), 1u);
  EXPECT_EQ(Delta.get(PerfCounter::CacheSuiteHits), 0u);

  // The garbage entry exercises the decoder-reject path the same way.
  shutdownCache();
  Opts.Algorithms = {AlgorithmKind::SEGISUC};
  Recs = runSuite(Opts);
  ASSERT_EQ(Recs.size(), 1u);
  EXPECT_EQ(Recs[0].Result.V, Verdict::Unrealizable) << Recs[0].Result.Detail;
  EXPECT_NE(Recs[0].Result.Ev.Source, VerdictSource::Cache);

  stopDaemon(*D);
  joinDaemons();
}
