//===- CacheTest.cpp - Memoization subsystem tests ------------------------===//
//
// Covers the content-addressed cache stack (src/cache/): canonical hashing
// determinism, the sharded in-memory caches under concurrency, SMT-query
// memoization semantics (soft assertions, deadline bypass), the persistent
// store's corruption tolerance, and configuration validation.
//
//===----------------------------------------------------------------------===//

#include "cache/CacheConfig.h"
#include "cache/Canonical.h"
#include "cache/DiskStore.h"
#include "cache/SgeSolutionCache.h"
#include "cache/ShardedCache.h"
#include "cache/SmtQueryCache.h"
#include "cache/TermIO.h"
#include "core/SynthesisTask.h"
#include "smt/Solver.h"
#include "support/Diagnostics.h"
#include "support/PerfCounters.h"
#include "support/ThreadPool.h"
#include "synth/Enumerator.h"
#include "synth/SgeSolver.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>

using namespace se2gis;

namespace {

namespace fs = std::filesystem;

/// Every test in this file runs with a clean cache state and restores the
/// process-wide default (Off) afterwards, so the rest of the suite is
/// unaffected.
class CacheTest : public ::testing::Test {
protected:
  void SetUp() override { shutdownCache(); }
  void TearDown() override {
    shutdownCache();
    if (!TempDir.empty())
      fs::remove_all(TempDir);
  }

  /// Creates (and remembers, for cleanup) a fresh cache directory.
  std::string freshDir(const std::string &Tag) {
    TempDir = (fs::temp_directory_path() /
               ("se2gis-cache-test-" + Tag + "-" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
                  .string();
    fs::remove_all(TempDir);
    return TempDir;
  }

  void enableMem() {
    CacheSettings S;
    S.Mode = CacheMode::Mem;
    configureCache(S);
  }

  std::string TempDir;
};

// --- Canonical hashing --------------------------------------------------===//

TEST_F(CacheTest, CanonicalHashIgnoresConstructionOrder) {
  // The same query built in two different orders — operands of commutative
  // operators swapped, assertions added in reverse, fresh (different-id)
  // variables — must produce the same key. This is the determinism
  // regression: nothing pointer- or id-dependent may reach the hash.
  VarPtr X1 = freshVar("x", Type::intTy());
  VarPtr Y1 = freshVar("y", Type::intTy());
  TermPtr A1 = mkOp(OpKind::Gt, {mkAdd(mkVar(X1), mkVar(Y1)), mkIntLit(3)});
  TermPtr B1 = mkOp(OpKind::Lt, {mkVar(X1), mkIntLit(10)});
  CanonicalQuery Q1 = canonicalizeQuery({A1, B1}, {}, {});

  VarPtr X2 = freshVar("u", Type::intTy());
  VarPtr Y2 = freshVar("v", Type::intTy());
  // y + x instead of x + y; B before A.
  TermPtr A2 = mkOp(OpKind::Gt, {mkAdd(mkVar(Y2), mkVar(X2)), mkIntLit(3)});
  TermPtr B2 = mkOp(OpKind::Lt, {mkVar(X2), mkIntLit(10)});
  CanonicalQuery Q2 = canonicalizeQuery({B2, A2}, {}, {});

  EXPECT_EQ(Q1.Key, Q2.Key);
  EXPECT_EQ(Q1.VarOrder.size(), Q2.VarOrder.size());
}

TEST_F(CacheTest, CanonicalHashSeparatesDistinctQueries) {
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr Y = freshVar("y", Type::intTy());
  TermPtr Plus = mkEq(mkAdd(mkVar(X), mkVar(Y)), mkIntLit(5));
  TermPtr Minus = mkEq(mkSub(mkVar(X), mkVar(Y)), mkIntLit(5));
  EXPECT_NE(canonicalizeQuery({Plus}, {}, {}).Key,
            canonicalizeQuery({Minus}, {}, {}).Key);
  // Subtraction is NOT commutative: x - 1 and 1 - x must differ. (x - y vs
  // y - x would NOT differ: as closed queries over fresh variables they are
  // alpha-equivalent, and the renamer canonicalizes both to #0 - #1.)
  TermPtr SubLit = mkEq(mkSub(mkVar(X), mkIntLit(1)), mkIntLit(5));
  TermPtr LitSub = mkEq(mkSub(mkIntLit(1), mkVar(X)), mkIntLit(5));
  EXPECT_NE(canonicalizeQuery({SubLit}, {}, {}).Key,
            canonicalizeQuery({LitSub}, {}, {}).Key);
  TermPtr MinusSwapped = mkEq(mkSub(mkVar(Y), mkVar(X)), mkIntLit(5));
  EXPECT_EQ(canonicalizeQuery({Minus}, {}, {}).Key,
            canonicalizeQuery({MinusSwapped}, {}, {}).Key);
  // Literals matter.
  TermPtr Plus6 = mkEq(mkAdd(mkVar(X), mkVar(Y)), mkIntLit(6));
  EXPECT_NE(canonicalizeQuery({Plus}, {}, {}).Key,
            canonicalizeQuery({Plus6}, {}, {}).Key);
}

TEST_F(CacheTest, CanonicalHashSeparatesHardFromSoft) {
  // The same assertion as hard vs as soft changes the query's meaning
  // (soft assertions are droppable), so the keys must differ.
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(0)});
  EXPECT_NE(canonicalizeQuery({A}, {}, {}).Key,
            canonicalizeQuery({}, {A}, {}).Key);
}

TEST_F(CacheTest, CanonicalVarOrderTracksAlphaRenaming) {
  // VarOrder lists this query's concrete variables in canonical-slot order;
  // alpha-equivalent queries get the same key with their own variables.
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)});
  CanonicalQuery Q1 = canonicalizeQuery({A}, {}, {});
  ASSERT_EQ(Q1.VarOrder.size(), 1u);
  EXPECT_EQ(Q1.VarOrder[0]->Id, X->Id);

  VarPtr Z = freshVar("z", Type::intTy());
  TermPtr B = mkOp(OpKind::Gt, {mkVar(Z), mkIntLit(3)});
  CanonicalQuery Q2 = canonicalizeQuery({B}, {}, {});
  EXPECT_EQ(Q1.Key, Q2.Key);
  ASSERT_EQ(Q2.VarOrder.size(), 1u);
  EXPECT_EQ(Q2.VarOrder[0]->Id, Z->Id);
}

TEST_F(CacheTest, Hash128HexRoundTrip) {
  Hash128 H = hash128String(hash128Seed(7), "roundtrip");
  Hash128 Back{};
  ASSERT_TRUE(Hash128::fromHex(H.hex(), Back));
  EXPECT_EQ(H, Back);
  EXPECT_FALSE(Hash128::fromHex("not hex", Back));
  EXPECT_FALSE(Hash128::fromHex(H.hex().substr(1), Back));
}

// --- TermIO -------------------------------------------------------------===//

TEST_F(CacheTest, ValueTextRoundTrip) {
  ValuePtr V = Value::mkTuple(
      {Value::mkInt(-42), Value::mkBool(true),
       Value::mkTuple({Value::mkInt(0), Value::mkBool(false)})});
  ValuePtr Back = valueFromText(valueToText(V));
  ASSERT_NE(Back, nullptr);
  EXPECT_TRUE(valueEquals(V, Back));
  EXPECT_EQ(valueFromText("(tup 1"), nullptr);
  EXPECT_EQ(valueFromText("zzz"), nullptr);
}

TEST_F(CacheTest, TermTextRoundTripAcrossVariables) {
  // A body serialized against one parameter list re-instantiates against
  // another (leaf-indexed form): the cross-process transfer property.
  VarPtr P0 = freshVar("p0", Type::intTy());
  VarPtr P1 = freshVar("p1", Type::intTy());
  TermPtr Body = mkIte(mkOp(OpKind::Ge, {mkVar(P0), mkVar(P1)}), mkVar(P0),
                       mkVar(P1));
  std::string Text = termToText(Body, std::vector<VarPtr>{P0, P1});
  ASSERT_FALSE(Text.empty());

  VarPtr Q0 = freshVar("q0", Type::intTy());
  VarPtr Q1 = freshVar("q1", Type::intTy());
  TermPtr Back = termFromText(Text, std::vector<VarPtr>{Q0, Q1});
  ASSERT_NE(Back, nullptr);
  Env E;
  E[Q0->Id] = Value::mkInt(3);
  E[Q1->Id] = Value::mkInt(8);
  EXPECT_EQ(evalScalarTerm(Back, E)->getInt(), 8);

  // Malformed input and out-of-range leaf indices degrade to nullptr.
  EXPECT_EQ(termFromText("(max (v 0)", std::vector<VarPtr>{Q0}), nullptr);
  EXPECT_EQ(termFromText("(v 5)", std::vector<VarPtr>{Q0}), nullptr);
}

// --- ShardedCache concurrency -------------------------------------------===//

TEST_F(CacheTest, ShardedCacheConcurrentAccess) {
  // Hammer one cache from a pool of workers (run under the tsan preset to
  // check the locking): every inserted entry must be retrievable and
  // identical to what was inserted.
  ShardedCache<int> C(1 << 16);
  constexpr int Workers = 8, PerWorker = 500;
  ThreadPool Pool(Workers);
  std::vector<std::future<void>> Pending;
  for (int W = 0; W < Workers; ++W)
    Pending.push_back(Pool.enqueue([&C, W] {
      for (int I = 0; I < PerWorker; ++I) {
        Hash128 K = hash128Combine(hash128Seed(0xAB),
                                   static_cast<std::uint64_t>(I));
        C.insert(K, I);
        auto V = C.lookup(K);
        ASSERT_TRUE(V.has_value());
        EXPECT_EQ(*V, I); // existing entries win; all writers agree anyway
        (void)W;
      }
    }));
  for (auto &F : Pending)
    F.get();
  EXPECT_EQ(C.size(), static_cast<std::size_t>(PerWorker));
}

TEST_F(CacheTest, ShardedCacheEvictsBeyondCapacity) {
  ShardedCache<int> C(16); // one entry per shard
  std::size_t Evicted = 0;
  for (int I = 0; I < 320; ++I) {
    Hash128 K = hash128Combine(hash128Seed(0xCD),
                               static_cast<std::uint64_t>(I));
    Evicted += C.insert(K, I).Evicted;
  }
  EXPECT_LE(C.size(), 16u);
  EXPECT_EQ(C.size() + Evicted, 320u);
}

// --- SMT query cache ----------------------------------------------------===//

TEST_F(CacheTest, SmtCacheHitOnAlphaEquivalentQuery) {
  enableMem();
  PerfSnapshot Before = snapshotPerf();

  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A1 = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)});
  SmtModel M1;
  ASSERT_EQ(quickCheck({A1}, 1000, &M1), SmtResult::Sat);
  ASSERT_NE(M1.lookup(X->Id), nullptr);
  long long V1 = M1.lookup(X->Id)->getInt();
  EXPECT_GT(V1, 3);

  // Same query over a different variable: must hit, and the cached model
  // value must be rebound to the new variable.
  VarPtr Z = freshVar("z", Type::intTy());
  TermPtr A2 = mkOp(OpKind::Gt, {mkVar(Z), mkIntLit(3)});
  SmtModel M2;
  ASSERT_EQ(quickCheck({A2}, 1000, &M2), SmtResult::Sat);
  ASSERT_NE(M2.lookup(Z->Id), nullptr);
  EXPECT_EQ(M2.lookup(Z->Id)->getInt(), V1);

  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GE(Delta.get(PerfCounter::CacheSmtHits), 1u);
  EXPECT_GE(Delta.get(PerfCounter::CacheSmtInserts), 1u);
}

TEST_F(CacheTest, SmtCacheCachesUnsat) {
  enableMem();
  VarPtr X = freshVar("x", Type::intTy());
  std::vector<TermPtr> Q = {mkOp(OpKind::Gt, {mkVar(X), mkIntLit(3)}),
                            mkOp(OpKind::Lt, {mkVar(X), mkIntLit(2)})};
  ASSERT_EQ(quickCheck(Q, 1000), SmtResult::Unsat);
  PerfSnapshot Before = snapshotPerf();
  ASSERT_EQ(quickCheck(Q, 1000), SmtResult::Unsat);
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GE(Delta.get(PerfCounter::CacheSmtHits), 1u);
  // The hit skipped Z3 but still counted the verdict.
  EXPECT_GE(Delta.get(PerfCounter::SmtUnsat), 1u);
}

TEST_F(CacheTest, SmtCacheRespectsSoftAssertionSemantics) {
  enableMem();
  // Hard x>5 with soft x==0: the MaxSAT-lite loop drops the soft and
  // answers Sat. The memoized answer must reproduce that, and must not
  // be confused with the all-hard variant (which is Unsat).
  auto RunSoft = [] {
    VarPtr X = freshVar("x", Type::intTy());
    SmtQuery Q;
    Q.add(mkOp(OpKind::Gt, {mkVar(X), mkIntLit(5)}));
    Q.addSoft(mkEq(mkVar(X), mkIntLit(0)));
    SmtModel M;
    SmtResult R = Q.checkSat(1000, &M);
    return std::make_pair(R, M.lookup(X->Id) ? M.lookup(X->Id)->getInt() : 0);
  };
  auto [R1, V1] = RunSoft();
  ASSERT_EQ(R1, SmtResult::Sat);
  EXPECT_GT(V1, 5);

  PerfSnapshot Before = snapshotPerf();
  auto [R2, V2] = RunSoft();
  EXPECT_EQ(R2, SmtResult::Sat);
  EXPECT_EQ(V2, V1); // reproduced from the cache
  EXPECT_GE(snapshotPerf().since(Before).get(PerfCounter::CacheSmtHits), 1u);

  // All-hard variant: distinct key, genuinely Unsat.
  VarPtr X = freshVar("x", Type::intTy());
  SmtQuery Hard;
  Hard.add(mkOp(OpKind::Gt, {mkVar(X), mkIntLit(5)}));
  Hard.add(mkEq(mkVar(X), mkIntLit(0)));
  EXPECT_EQ(Hard.checkSat(1000), SmtResult::Unsat);
}

TEST_F(CacheTest, SmtCacheBypassedOnExpiredDeadline) {
  enableMem();
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkOp(OpKind::Gt, {mkVar(X), mkIntLit(100)});

  // Populate the cache with the true verdict first.
  ASSERT_EQ(quickCheck({A}, 1000), SmtResult::Sat);

  // An expired deadline must return Unknown without consulting the cache —
  // an early-exit answer may not masquerade as the query's verdict — and
  // must not insert anything.
  Deadline Expired = Deadline::afterMs(1);
  while (!Expired.expired()) {
  }
  PerfSnapshot Before = snapshotPerf();
  EXPECT_EQ(quickCheck({A}, 1000, nullptr, &Expired), SmtResult::Unknown);
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_EQ(Delta.get(PerfCounter::CacheSmtHits), 0u);
  EXPECT_EQ(Delta.get(PerfCounter::CacheSmtMisses), 0u);
  EXPECT_EQ(Delta.get(PerfCounter::CacheSmtInserts), 0u);
  EXPECT_GE(Delta.get(PerfCounter::SmtBudget), 1u);
}

TEST_F(CacheTest, SmtEntryCodecRejectsGarbage) {
  SmtCacheEntry E;
  E.Result = CachedSmtResult::Sat;
  E.ModelBySlot = {Value::mkInt(7), Value::mkBool(true)};
  E.RequestValues = {Value::mkTuple({Value::mkInt(1), Value::mkInt(2)})};
  auto Back = decodeSmtEntry(encodeSmtEntry(E));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Result, CachedSmtResult::Sat);
  ASSERT_EQ(Back->ModelBySlot.size(), 2u);
  EXPECT_TRUE(valueEquals(Back->ModelBySlot[0], E.ModelBySlot[0]));
  ASSERT_EQ(Back->RequestValues.size(), 1u);
  EXPECT_TRUE(valueEquals(Back->RequestValues[0], E.RequestValues[0]));

  EXPECT_FALSE(decodeSmtEntry("").has_value());
  EXPECT_FALSE(decodeSmtEntry("x 1 2").has_value());
  EXPECT_FALSE(decodeSmtEntry("s 2 0 7").has_value());      // missing value
  EXPECT_FALSE(decodeSmtEntry("s 1 0 7 junk").has_value()); // trailing junk
}

// --- PBE memo and SGE warm start ----------------------------------------===//

TEST_F(CacheTest, PbeMemoHitsAcrossEnumeratorInstances) {
  enableMem();
  GrammarConfig G;
  G.AllowMinMax = true;

  auto RunOnce = [&G](VarPtr P0, VarPtr P1) {
    Enumerator En(G, {mkVar(P0), mkVar(P1)});
    std::vector<PbeExample> Ex;
    for (auto [A, B] : {std::pair{3, 8}, {9, 2}, {5, 5}}) {
      PbeExample E;
      E.Inputs[P0->Id] = Value::mkInt(A);
      E.Inputs[P1->Id] = Value::mkInt(B);
      E.Output = Value::mkInt(std::max(A, B));
      Ex.push_back(std::move(E));
    }
    return En.synthesize(Type::intTy(), Ex, 5, Deadline::afterMs(10000));
  };

  VarPtr A0 = freshVar("a0", Type::intTy());
  VarPtr A1 = freshVar("a1", Type::intTy());
  ASSERT_TRUE(RunOnce(A0, A1).has_value());

  // A second enumerator over *different* variables: the leaf-value keyed
  // memo must hit and return a term over the new leaves.
  PerfSnapshot Before = snapshotPerf();
  VarPtr B0 = freshVar("b0", Type::intTy());
  VarPtr B1 = freshVar("b1", Type::intTy());
  auto R = RunOnce(B0, B1);
  ASSERT_TRUE(R.has_value());
  Env E;
  E[B0->Id] = Value::mkInt(4);
  E[B1->Id] = Value::mkInt(11);
  EXPECT_EQ(evalScalarTerm(*R, E)->getInt(), 11);
  EXPECT_GE(snapshotPerf().since(Before).get(PerfCounter::CachePbeHits), 1u);
}

TEST_F(CacheTest, SgeSolverWarmStartsFromSolutionCache) {
  enableMem();
  auto Solve = [] {
    VarPtr A = freshVar("a", Type::intTy());
    VarPtr B = freshVar("b", Type::intTy());
    std::vector<UnknownSig> Unknowns = {
        UnknownSig{"join", {Type::intTy(), Type::intTy()}, Type::intTy()}};
    Sge System;
    System.Eqns.push_back(SgeEquation{
        mkTrue(), mkUnknown("join", Type::intTy(), {mkVar(A), mkVar(B)}),
        mkAdd(mkVar(A), mkVar(B)), 0});
    GrammarConfig G;
    SgeSolver Solver(Unknowns, G);
    return Solver.solve(System, Deadline::afterMs(30000));
  };
  SgeResult R1 = Solve();
  ASSERT_EQ(R1.Status, SgeStatus::Solved);

  // Alpha-renamed rebuild of the same system: the second solve must hit the
  // solution cache and succeed in a single (verification-only) round.
  PerfSnapshot Before = snapshotPerf();
  SgeResult R2 = Solve();
  ASSERT_EQ(R2.Status, SgeStatus::Solved);
  EXPECT_EQ(R2.Rounds, 1);
  EXPECT_GE(snapshotPerf().since(Before).get(PerfCounter::CacheSgeHits), 1u);
}

// --- DiskStore ----------------------------------------------------------===//

TEST_F(CacheTest, DiskStoreRoundTrip) {
  std::string Dir = freshDir("roundtrip");
  std::string Err;
  auto Store = DiskStore::open(Dir, Err);
  ASSERT_NE(Store, nullptr) << Err;
  Hash128 K1 = hash128Seed(1), K2 = hash128Seed(2);
  Store->append("seg", K1, "payload one");
  Store->append("seg", K2, "payload\ntwo \"quoted\"");
  Store->append("seg", K1, "payload one revised"); // last wins on reload

  auto Reopened = DiskStore::open(Dir, Err);
  ASSERT_NE(Reopened, nullptr) << Err;
  DiskStore::SegmentMap Seg = Reopened->loadSegment("seg");
  ASSERT_EQ(Seg.size(), 2u);
  EXPECT_EQ(Seg.at(K1), "payload one revised");
  EXPECT_EQ(Seg.at(K2), "payload\ntwo \"quoted\"");
  EXPECT_EQ(Reopened->corruptLinesSkipped(), 0u);
}

TEST_F(CacheTest, DiskStoreSkipsCorruptAndTornLines) {
  std::string Dir = freshDir("corrupt");
  std::string Err;
  {
    auto Store = DiskStore::open(Dir, Err);
    ASSERT_NE(Store, nullptr) << Err;
    Store->append("seg", hash128Seed(1), "good one");
    Store->append("seg", hash128Seed(2), "good two");
  }
  {
    // Corrupt the middle and tear the tail, as a crash would.
    std::ofstream OS(Dir + "/seg.jsonl", std::ios::app);
    OS << "{\"k\":\"zzzz\",\"p\":\"bad\",\"c\":0}\n";     // malformed key
    std::string Line = formatStoreLine(hash128Seed(3), "flipped");
    Line[Line.size() / 2] ^= 1; // CRC mismatch
    OS << Line << "\n";
    OS << "{\"k\":\"0123"; // torn tail: partial final line, no newline
  }
  auto Store = DiskStore::open(Dir, Err);
  ASSERT_NE(Store, nullptr) << Err;
  DiskStore::SegmentMap Seg = Store->loadSegment("seg");
  EXPECT_EQ(Seg.size(), 2u);
  EXPECT_EQ(Seg.at(hash128Seed(1)), "good one");
  EXPECT_EQ(Seg.at(hash128Seed(2)), "good two");
  EXPECT_GE(Store->corruptLinesSkipped(), 2u);
}

TEST_F(CacheTest, DiskStoreRefusesUnknownVersion) {
  std::string Dir = freshDir("version");
  fs::create_directories(Dir);
  std::ofstream(Dir + "/store.meta") << "se2gis-cache v999\n";
  std::string Err;
  EXPECT_EQ(DiskStore::open(Dir, Err), nullptr);
  EXPECT_FALSE(Err.empty());
}

TEST_F(CacheTest, StoreLineParserIsStrict) {
  Hash128 K = hash128Seed(42);
  std::string Line = formatStoreLine(K, "abc");
  Hash128 KeyOut{};
  std::string Payload;
  ASSERT_TRUE(parseStoreLine(Line, KeyOut, Payload));
  EXPECT_EQ(KeyOut, K);
  EXPECT_EQ(Payload, "abc");
  EXPECT_FALSE(parseStoreLine("", KeyOut, Payload));
  EXPECT_FALSE(parseStoreLine("{}", KeyOut, Payload));
  EXPECT_FALSE(parseStoreLine(Line.substr(0, Line.size() - 4), KeyOut,
                              Payload));
}

// --- Persistent end-to-end ----------------------------------------------===//

TEST_F(CacheTest, DiskModePersistsSmtVerdictsAcrossReconfiguration) {
  std::string Dir = freshDir("e2e");
  CacheSettings S;
  S.Mode = CacheMode::Disk;
  S.Dir = Dir;
  configureCache(S);

  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkEq(mkAdd(mkVar(X), mkIntLit(2)), mkIntLit(9));
  SmtModel M;
  ASSERT_EQ(quickCheck({A}, 1000, &M), SmtResult::Sat);
  EXPECT_EQ(M.lookup(X->Id)->getInt(), 7);

  // Simulate a fresh process: drop all in-memory state, re-open the store.
  shutdownCache();
  configureCache(S);

  PerfSnapshot Before = snapshotPerf();
  VarPtr Z = freshVar("z", Type::intTy());
  TermPtr B = mkEq(mkAdd(mkVar(Z), mkIntLit(2)), mkIntLit(9));
  SmtModel M2;
  ASSERT_EQ(quickCheck({B}, 1000, &M2), SmtResult::Sat);
  EXPECT_EQ(M2.lookup(Z->Id)->getInt(), 7);
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GE(Delta.get(PerfCounter::CacheSmtHits), 1u);
}

// --- Configuration ------------------------------------------------------===//

TEST_F(CacheTest, ParseCacheModeAcceptsAliases) {
  EXPECT_EQ(parseCacheMode("off"), CacheMode::Off);
  EXPECT_EQ(parseCacheMode("mem"), CacheMode::Mem);
  EXPECT_EQ(parseCacheMode("MEMORY"), CacheMode::Mem);
  EXPECT_EQ(parseCacheMode("disk"), CacheMode::Disk);
  EXPECT_EQ(parseCacheMode("bogus"), std::nullopt);
}

TEST_F(CacheTest, ValidateCacheDirRejectsRegularFile) {
  std::string Dir = freshDir("notadir");
  fs::create_directories(fs::path(Dir).parent_path());
  std::ofstream(Dir) << "I am a file, not a directory\n";
  EXPECT_FALSE(validateCacheDir(Dir).empty());
}

TEST_F(CacheTest, FromEnvRejectsUnusableCacheDir) {
  std::string Dir = freshDir("envreject");
  std::ofstream(Dir) << "occupied\n";
  ::setenv("SE2GIS_CACHE", "disk", 1);
  ::setenv("SE2GIS_CACHE_DIR", Dir.c_str(), 1);
  EXPECT_THROW((void)SolverConfig::fromEnv(), UserError);
  ::setenv("SE2GIS_CACHE", "bogus", 1);
  EXPECT_THROW((void)SolverConfig::fromEnv(), UserError);
  ::unsetenv("SE2GIS_CACHE");
  ::unsetenv("SE2GIS_CACHE_DIR");
}

TEST_F(CacheTest, ConfigureCacheThrowsOnUnusableDir) {
  std::string Dir = freshDir("confreject");
  std::ofstream(Dir) << "occupied\n";
  CacheSettings S;
  S.Mode = CacheMode::Disk;
  S.Dir = Dir;
  EXPECT_THROW(configureCache(S), UserError);
  EXPECT_EQ(cacheMode(), CacheMode::Off); // failed configure leaves Off
}

} // namespace
