//===- LangTest.cpp - Unit tests for functions and programs ---------------===//

#include "lang/Program.h"

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

/// Builds list = Elt of int | Cons of int * list with a `lmin` reference.
struct ListProgram {
  std::shared_ptr<Program> Prog = std::make_shared<Program>();
  Datatype *List = nullptr;
  TypePtr ListTy;

  ListProgram() {
    List = Prog->addDatatype("list");
    ListTy = Prog->getDataType("list");
    List->addConstructor("Elt", {Type::intTy()});
    List->addConstructor("Cons", {Type::intTy(), ListTy});

    RecFunction Min =
        RecFunction::makeScheme("lmin", {}, List, Type::intTy());
    VarPtr A0 = namedVar("a", Type::intTy());
    Min.addRule(0, {A0}, mkVar(A0));
    VarPtr A1 = namedVar("a", Type::intTy());
    VarPtr L1 = namedVar("l", ListTy);
    Min.addRule(1, {A1, L1},
                mkOp(OpKind::Min,
                     {mkVar(A1),
                      mkCall("lmin", Type::intTy(), {mkVar(L1)})}));
    Prog->addFunction(std::move(Min));
  }
};

TEST(LangTest, SchemeCompleteness) {
  ListProgram LP;
  const RecFunction *Min = LP.Prog->findFunction("lmin");
  ASSERT_NE(Min, nullptr);
  EXPECT_TRUE(Min->isScheme());
  EXPECT_TRUE(Min->isComplete());
  EXPECT_EQ(Min->numArgs(), 1u);
  EXPECT_NE(Min->findRule(0), nullptr);
  EXPECT_NE(Min->findRule(1), nullptr);
  EXPECT_EQ(Min->findRule(2), nullptr);
}

TEST(LangTest, DuplicateFunctionRejected) {
  ListProgram LP;
  RecFunction F = RecFunction::makePlain("lmin", {}, mkIntLit(0));
  EXPECT_THROW(LP.Prog->addFunction(std::move(F)), UserError);
}

TEST(LangTest, DuplicateDatatypeRejected) {
  ListProgram LP;
  EXPECT_THROW(LP.Prog->addDatatype("list"), UserError);
}

TEST(LangTest, IdentityReprShape) {
  ListProgram LP;
  addIdentityRepr(*LP.Prog, LP.List, "repr");
  const RecFunction *R = LP.Prog->findFunction("repr");
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(R->isScheme());
  EXPECT_TRUE(R->isComplete());
  // Cons rule recurses on the tail: Cons(i, repr(i')).
  const SchemeRule *Cons = R->findRule(1);
  ASSERT_NE(Cons, nullptr);
  EXPECT_EQ(Cons->Body->getKind(), TermKind::Ctor);
  EXPECT_EQ(Cons->Body->getArg(1)->getKind(), TermKind::Call);
  EXPECT_EQ(Cons->Body->getArg(1)->getCallee(), "repr");
}

TEST(LangTest, ValidateProblemHappyPath) {
  ListProgram LP;
  addIdentityRepr(*LP.Prog, LP.List, "repr");

  RecFunction Tgt = RecFunction::makeScheme("mins", {}, LP.List,
                                            Type::intTy());
  VarPtr A0 = namedVar("a", Type::intTy());
  Tgt.addRule(0, {A0}, mkUnknown("b1", Type::intTy(), {mkVar(A0)}));
  VarPtr A1 = namedVar("a", Type::intTy());
  VarPtr L1 = namedVar("l", LP.ListTy);
  Tgt.addRule(1, {A1, L1}, mkUnknown("b2", Type::intTy(), {mkVar(A1)}));
  LP.Prog->addFunction(std::move(Tgt));

  Problem P;
  P.Prog = LP.Prog;
  P.Reference = "lmin";
  P.Target = "mins";
  P.Repr = "repr";
  P.Theta = LP.List;
  P.Tau = LP.List;
  validateProblem(P);
  EXPECT_EQ(P.Unknowns.size(), 2u);
  EXPECT_NE(P.findUnknown("b1"), nullptr);
  EXPECT_NE(P.findUnknown("b2"), nullptr);
  EXPECT_EQ(P.findUnknown("nope"), nullptr);
  EXPECT_TRUE(P.RetTy->isInt());
}

TEST(LangTest, ValidateRejectsMissingUnknowns) {
  ListProgram LP;
  addIdentityRepr(*LP.Prog, LP.List, "repr");
  // Target with no unknowns at all.
  RecFunction Tgt =
      RecFunction::makeScheme("mins", {}, LP.List, Type::intTy());
  VarPtr A0 = namedVar("a", Type::intTy());
  Tgt.addRule(0, {A0}, mkVar(A0));
  VarPtr A1 = namedVar("a", Type::intTy());
  VarPtr L1 = namedVar("l", LP.ListTy);
  Tgt.addRule(1, {A1, L1}, mkVar(A1));
  LP.Prog->addFunction(std::move(Tgt));

  Problem P;
  P.Prog = LP.Prog;
  P.Reference = "lmin";
  P.Target = "mins";
  P.Repr = "repr";
  P.Theta = LP.List;
  P.Tau = LP.List;
  EXPECT_THROW(validateProblem(P), UserError);
}

TEST(LangTest, FunctionPrinting) {
  ListProgram LP;
  std::string S = LP.Prog->findFunction("lmin")->str();
  EXPECT_NE(S.find("let rec lmin = function"), std::string::npos);
  EXPECT_NE(S.find("| Elt"), std::string::npos);
  EXPECT_NE(S.find("| Cons"), std::string::npos);
}

} // namespace
