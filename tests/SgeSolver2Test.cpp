//===- SgeSolver2Test.cpp - More SGE solver coverage ----------------------===//

#include "synth/SgeSolver.h"

#include "ast/Simplify.h"
#include "synth/Grammar.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

GrammarConfig grammar() {
  GrammarConfig G;
  G.AllowMinMax = true;
  return G;
}

TEST(SgeSolver2Test, NestedUnknownsWithAnchoring) {
  // join(join(s0(a), s0(b)), v) = a + (b + v): requires the anchored EUF
  // model to keep inner cells generalizable.
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr B = freshVar("b", Type::intTy());
  VarPtr V = freshVar("v", Type::intTy());
  std::vector<UnknownSig> Unknowns = {
      UnknownSig{"s0", {Type::intTy()}, Type::intTy()},
      UnknownSig{"join", {Type::intTy(), Type::intTy()}, Type::intTy()},
  };
  auto S0 = [](TermPtr X) {
    return mkUnknown("s0", Type::intTy(), {std::move(X)});
  };
  auto Join = [](TermPtr X, TermPtr Y) {
    return mkUnknown("join", Type::intTy(), {std::move(X), std::move(Y)});
  };
  Sge System;
  System.Eqns.push_back(SgeEquation{mkTrue(), S0(mkVar(A)), mkVar(A), 0});
  System.Eqns.push_back(SgeEquation{
      mkTrue(), Join(S0(mkVar(A)), mkVar(V)), mkAdd(mkVar(A), mkVar(V)),
      1});
  System.Eqns.push_back(SgeEquation{
      mkTrue(), Join(Join(S0(mkVar(A)), S0(mkVar(B))), mkVar(V)),
      mkAdd(mkVar(A), mkAdd(mkVar(B), mkVar(V))), 2});

  SgeSolver Solver(Unknowns, grammar());
  SgeResult R = Solver.solve(System, Deadline::afterMs(30000));
  ASSERT_EQ(R.Status, SgeStatus::Solved);
  const UnknownDef &J = R.Solution.at("join");
  Env E;
  E[J.Params[0]->Id] = Value::mkInt(4);
  E[J.Params[1]->Id] = Value::mkInt(9);
  EXPECT_EQ(evalScalarTerm(J.Body, E)->getInt(), 13);
}

TEST(SgeSolver2Test, GuardedEquationsRestrictTheObligation) {
  // u(a) = a only under a >= 0; u(a) = -a under a < 0: abs, realizable.
  VarPtr A = freshVar("a", Type::intTy());
  std::vector<UnknownSig> Unknowns = {
      UnknownSig{"u", {Type::intTy()}, Type::intTy()}};
  Sge System;
  System.Eqns.push_back(SgeEquation{
      mkOp(OpKind::Ge, {mkVar(A), mkIntLit(0)}),
      mkUnknown("u", Type::intTy(), {mkVar(A)}), mkVar(A), 0});
  VarPtr B = freshVar("b", Type::intTy());
  System.Eqns.push_back(SgeEquation{
      mkOp(OpKind::Lt, {mkVar(B), mkIntLit(0)}),
      mkUnknown("u", Type::intTy(), {mkVar(B)}),
      mkOp(OpKind::Neg, {mkVar(B)}), 1});
  SgeSolver Solver(Unknowns, grammar());
  SgeResult R = Solver.solve(System, Deadline::afterMs(30000));
  ASSERT_EQ(R.Status, SgeStatus::Solved);
  const UnknownDef &U = R.Solution.at("u");
  Env E;
  E[U.Params[0]->Id] = Value::mkInt(-7);
  EXPECT_EQ(evalScalarTerm(U.Body, E)->getInt(), 7);
}

TEST(SgeSolver2Test, VacuousGuardMeansUnconstrained) {
  // An equation guarded by `false` imposes nothing; the default candidate
  // must satisfy the (empty) system immediately.
  VarPtr A = freshVar("a", Type::intTy());
  std::vector<UnknownSig> Unknowns = {
      UnknownSig{"u", {Type::intTy()}, Type::intTy()}};
  Sge System;
  System.Eqns.push_back(SgeEquation{
      mkFalse(), mkUnknown("u", Type::intTy(), {mkVar(A)}), mkIntLit(99),
      0});
  SgeSolver Solver(Unknowns, grammar());
  SgeResult R = Solver.solve(System, Deadline::afterMs(10000));
  ASSERT_EQ(R.Status, SgeStatus::Solved);
  EXPECT_EQ(R.Rounds, 1);
}

TEST(SgeSolver2Test, BooleanUnknowns) {
  // p(a) = (a > 0) || (a = -5).
  VarPtr A = freshVar("a", Type::intTy());
  std::vector<UnknownSig> Unknowns = {
      UnknownSig{"p", {Type::intTy()}, Type::boolTy()}};
  Sge System;
  System.Eqns.push_back(SgeEquation{
      mkTrue(), mkUnknown("p", Type::boolTy(), {mkVar(A)}),
      mkOrList({mkOp(OpKind::Gt, {mkVar(A), mkIntLit(0)}),
                mkEq(mkVar(A), mkIntLit(-5))}),
      0});
  GrammarConfig G = grammar();
  G.Constants.insert(-5);
  SgeSolver Solver(Unknowns, G);
  SgeResult R = Solver.solve(System, Deadline::afterMs(30000));
  ASSERT_EQ(R.Status, SgeStatus::Solved);
  const UnknownDef &P = R.Solution.at("p");
  Env E;
  E[P.Params[0]->Id] = Value::mkInt(-5);
  EXPECT_TRUE(evalScalarTerm(P.Body, E)->getBool());
  E[P.Params[0]->Id] = Value::mkInt(-4);
  EXPECT_FALSE(evalScalarTerm(P.Body, E)->getBool());
}

TEST(SgeSolver2Test, TupleUnknownSolvedComponentwise) {
  VarPtr A = freshVar("a", Type::intTy());
  TypePtr Pair = Type::tupleTy({Type::intTy(), Type::intTy()});
  std::vector<UnknownSig> Unknowns = {
      UnknownSig{"g", {Type::intTy()}, Pair}};
  Sge System;
  System.Eqns.push_back(SgeEquation{
      mkTrue(), mkUnknown("g", Pair, {mkVar(A)}),
      mkTuple({mkAdd(mkVar(A), mkIntLit(1)),
               mkOp(OpKind::Max, {mkVar(A), mkIntLit(0)})}),
      0});
  SgeSolver Solver(Unknowns, grammar());
  SgeResult R = Solver.solve(System, Deadline::afterMs(30000));
  ASSERT_EQ(R.Status, SgeStatus::Solved);
}

TEST(SgeSolver2Test, ExpiredBudgetReturnsUnknown) {
  VarPtr A = freshVar("a", Type::intTy());
  std::vector<UnknownSig> Unknowns = {
      UnknownSig{"u", {Type::intTy()}, Type::intTy()}};
  Sge System;
  System.Eqns.push_back(SgeEquation{
      mkTrue(), mkUnknown("u", Type::intTy(), {mkVar(A)}),
      mkAdd(mkVar(A), mkIntLit(1)), 0});
  SgeSolver Solver(Unknowns, grammar());
  // afterMs(<=0) means unlimited, so an already-cancelled token is the way
  // to hand the solver an expired budget deterministically.
  CancellationToken T = CancellationToken::create();
  T.requestCancel(CancelReason::DeadlineExceeded);
  Deadline D;
  D.setToken(T);
  SgeResult R = Solver.solve(System, D);
  EXPECT_EQ(R.Status, SgeStatus::Unknown);
}

} // namespace
