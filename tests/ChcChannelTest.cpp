//===- ChcChannelTest.cpp - CHC channel, encoder, and Evidence tests ------===//

#include "chc/ChcChannel.h"

#include "chc/ChcEncoder.h"
#include "chc/FixedpointSolver.h"
#include "core/Portfolio.h"
#include "core/SynthesisTask.h"
#include "frontend/Elaborate.h"
#include "suite/Benchmarks.h"
#include "support/Diagnostics.h"
#include "support/PerfCounters.h"
#include "synth/Grammar.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

using namespace se2gis;

namespace {

Problem load(const char *Name) {
  const BenchmarkDef *Def = findBenchmark(Name);
  EXPECT_NE(Def, nullptr) << Name;
  return loadBenchmark(*Def);
}

bool anyRuleContains(const FixedpointSolver &FP, const std::string &Needle) {
  for (const std::string &R : FP.rules())
    if (R.find(Needle) != std::string::npos)
      return true;
  return false;
}

// --- Encoder golden clauses ---------------------------------------------===//

TEST(ChcEncoderTest, EmitsRelationsAndGoalForTinyProblem) {
  Problem P = load("unreal/sum");
  GrammarConfig G = inferGrammar(P);
  FixedpointSolver FP;
  ChcEncoder Enc(P, G);
  ChcSystem Sys = Enc.encode(FP);
  ASSERT_TRUE(Sys.Encodable) << Sys.Reason;

  // Shape of the system, not exact counts: some bounded terms, at least one
  // evaluation point per unknown use, and constraints that mention them.
  EXPECT_GT(Sys.NumTerms, 0u);
  EXPECT_GT(Sys.NumPoints, 0u);
  EXPECT_GT(Sys.NumEquations, 0u);
  EXPECT_EQ(Sys.NumRules, FP.numRules());
  EXPECT_GT(Sys.NumRules, 0u);

  // Golden structure: the per-unknown integer relation, the ∀k constant
  // rule (an unbound `chc_k` column), and the realizable goal rule.
  EXPECT_TRUE(anyRuleContains(FP, "chc_int_"));
  EXPECT_TRUE(anyRuleContains(FP, "chc_k"));
  EXPECT_TRUE(anyRuleContains(FP, "chc_realizable"));
  // The goal atom is the 0-ary realizable relation.
  EXPECT_EQ(Enc.goal().to_string(), "chc_realizable");
}

TEST(ChcEncoderTest, GrammarGatesOperatorRules) {
  Problem P = load("unreal/sum");
  GrammarConfig G; // default: no min/max, no mul
  G.AllowMinMax = false;
  G.AllowMul = false;
  FixedpointSolver FP;
  ChcEncoder Enc(P, G, ChcOptions{});
  ChcSystem Sys = Enc.encode(FP);
  ASSERT_TRUE(Sys.Encodable) << Sys.Reason;
  size_t Base = FP.numRules();

  GrammarConfig G2 = G;
  G2.AllowMinMax = true;
  G2.AllowMul = true;
  FixedpointSolver FP2;
  ChcEncoder Enc2(P, G2, ChcOptions{});
  ChcSystem Sys2 = Enc2.encode(FP2);
  ASSERT_TRUE(Sys2.Encodable) << Sys2.Reason;
  EXPECT_GT(FP2.numRules(), Base); // min/max/mul rules were added
}

// --- Coverage-gap counters ----------------------------------------------===//

TEST(ChcEncoderTest, CountsNonscalarBailInPerfCounters) {
  // A tuple-returning unknown (list/range_span's $g0 : int * int) is
  // outside the CHC fragment; the encoder must refuse AND record the
  // coverage gap, so "how often does the channel sit out" is answerable
  // from perf JSON alone.
  Problem P = load("list/range_span");
  PerfSnapshot Before = snapshotPerf();
  FixedpointSolver FP;
  ChcEncoder Enc(P, inferGrammar(P));
  ChcSystem Sys = Enc.encode(FP);
  EXPECT_FALSE(Sys.Encodable);
  EXPECT_NE(Sys.Reason.find("non-base type"), std::string::npos)
      << Sys.Reason;
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GE(Delta.get(PerfCounter::ChcSkippedNonscalar), 1u);
  EXPECT_EQ(Delta.get(PerfCounter::ChcSkippedEquations), 0u);
}

TEST(ChcEncoderTest, CountsSkippedEquationsInPerfCounters) {
  // A triply-recursive reference costs ~3^depth evaluation steps, so the
  // deeper bounded shapes exhaust the symbolic-evaluation fuel; the
  // encoder must drop exactly those equations (soundly — fewer
  // constraints only weakens the system) and record each skip in the
  // counters so the coverage loss is measurable.
  Problem P = loadProblem("type v = VZ | VS of int * v\n"
                          "\n"
                          "let rec vspec : int = function\n"
                          "  | VZ -> 0\n"
                          "  | VS (a, l) -> vspec l + vspec l + vspec l\n"
                          "\n"
                          "let rec vtgt : int = function\n"
                          "  | VZ -> $v0\n"
                          "  | VS (a, l) -> $v1 a (vtgt l)\n"
                          "\n"
                          "synthesize vtgt equiv vspec\n");
  PerfSnapshot Before = snapshotPerf();
  ChcOptions Opts;
  Opts.MaxTerms = 24; // deep enough that the tail shapes blow the fuel
  FixedpointSolver FP;
  ChcEncoder Enc(P, inferGrammar(P), Opts);
  ChcSystem Sys = Enc.encode(FP);
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GT(Delta.get(PerfCounter::ChcSkippedEquations), 0u);
  // The shallow shapes still made it in.
  EXPECT_TRUE(Sys.Encodable) << Sys.Reason;
  EXPECT_GT(Sys.NumTerms, 0u);
}

// --- Verdict parity witness vs CHC --------------------------------------===//

TEST(ChcChannelTest, ProvesUnrealizableWhereWitnessDoes) {
  for (const char *Name : {"unreal/sum", "unreal/min_no_invariant"}) {
    Problem P = load(Name);
    AlgoOptions Opts;
    Opts.TimeoutMs = 20000;
    Outcome Chc = runChcChannel(P, Opts);
    EXPECT_EQ(Chc.V, Verdict::Unrealizable) << Name << ": " << Chc.Detail;
    Outcome Wit = runSE2GIS(P, Opts);
    EXPECT_EQ(Wit.V, Verdict::Unrealizable) << Name << ": " << Wit.Detail;
  }
}

TEST(ChcChannelTest, NeverCallsRealizableProblemUnrealizable) {
  for (const char *Name : {"list/sum", "list/length"}) {
    Problem P = load(Name);
    AlgoOptions Opts;
    Opts.TimeoutMs = 10000;
    Outcome R = runChcChannel(P, Opts);
    // One-sided channel: inconclusive (Failed/Timeout) is fine, a
    // contradictory verdict is not.
    EXPECT_NE(R.V, Verdict::Unrealizable) << Name << ": " << R.Detail;
    EXPECT_NE(R.V, Verdict::Realizable) << Name << ": " << R.Detail;
  }
}

TEST(ChcChannelTest, RaceAgreesWithWitnessOnUnrealizable) {
  // Plain SEGIS has no unrealizability outcome of its own, so under
  // UnrealMode::Race every Unrealizable verdict must come from the raced
  // CHC channel — and must agree with the witness loop's verdict.
  Problem P = load("unreal/sum");
  AlgoOptions Opts;
  Opts.TimeoutMs = 20000;
  Opts.Unreal = UnrealMode::Race;
  Outcome R = runAlgorithm(AlgorithmKind::SEGIS, P, Opts);
  EXPECT_EQ(R.V, Verdict::Unrealizable) << R.Detail;
  EXPECT_EQ(R.Ev.Source, VerdictSource::Chc);
}

// --- Budgets and cancellation -------------------------------------------===//

TEST(ChcChannelTest, ExpiredBudgetIsTimeoutNotFailed) {
  Problem P = load("unreal/sum");
  AlgoOptions Opts;
  Opts.TimeoutMs = 1; // expires during (or before) the first encode/query
  Outcome R = runChcChannel(P, Opts);
  EXPECT_EQ(R.V, Verdict::Timeout) << R.Detail;
}

TEST(ChcChannelTest, PreCancelledTokenIsTimeout) {
  Problem P = load("unreal/sum");
  AlgoOptions Opts;
  Opts.TimeoutMs = 60000;
  Opts.Token = CancellationToken::create();
  Opts.Token.requestCancel();
  Outcome R = runChcChannel(P, Opts);
  EXPECT_EQ(R.V, Verdict::Timeout) << R.Detail;
}

TEST(ChcChannelTest, CancellationMidRunStopsTheChannel) {
  // count_between_swap spends several hundred ms in the channel; cancel
  // early and the run must come back promptly as Timeout.
  Problem P = load("unreal/count_between_swap");
  AlgoOptions Opts;
  Opts.TimeoutMs = 60000;
  Opts.Token = CancellationToken::create();
  std::thread Cancel([T = Opts.Token]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    T.requestCancel();
  });
  Outcome R = runChcChannel(P, Opts);
  Cancel.join();
  EXPECT_EQ(R.V, Verdict::Timeout) << R.Detail;
  EXPECT_LT(R.Stats.ElapsedMs, 30000.0);
}

// --- Evidence provenance ------------------------------------------------===//

TEST(EvidenceTest, ChcVerdictCarriesClauseCount) {
  Problem P = load("unreal/sum");
  AlgoOptions Opts;
  Opts.TimeoutMs = 20000;
  Outcome R = runChcChannel(P, Opts);
  ASSERT_EQ(R.V, Verdict::Unrealizable) << R.Detail;
  EXPECT_EQ(R.Ev.Source, VerdictSource::Chc);
  EXPECT_EQ(R.Ev.Channel, "CHC");
  EXPECT_GT(R.Ev.ChcClauses, 0u);
  EXPECT_NE(R.Ev.str().find("clauses"), std::string::npos);
}

TEST(EvidenceTest, WitnessVerdictsCarryWitnessSource) {
  Problem P = load("list/sum");
  AlgoOptions Opts;
  Opts.TimeoutMs = 20000;
  Outcome R = runSE2GIS(P, Opts);
  ASSERT_EQ(R.V, Verdict::Realizable) << R.Detail;
  EXPECT_EQ(R.Ev.Source, VerdictSource::Witness);
  EXPECT_EQ(R.Ev.Channel, "SE2GIS");

  Problem U = load("unreal/min_no_invariant");
  Outcome RU = runSEGIS(U, Opts, /*WithUnrealizabilityChecker=*/true);
  ASSERT_EQ(RU.V, Verdict::Unrealizable) << RU.Detail;
  EXPECT_EQ(RU.Ev.Source, VerdictSource::Witness);
  EXPECT_EQ(RU.Ev.Channel, "SEGIS+UC");
}

TEST(EvidenceTest, PortfolioKeepsWinnersEvidence) {
  Problem P = load("unreal/min_no_invariant");
  AlgoOptions Opts;
  Opts.TimeoutMs = 20000;
  Outcome R = runPortfolio(P, Opts);
  ASSERT_EQ(R.V, Verdict::Unrealizable) << R.Detail;
  EXPECT_NE(R.Ev.Source, VerdictSource::None);
  EXPECT_FALSE(R.Ev.Channel.empty());
}

TEST(EvidenceTest, InconclusiveOutcomesHaveNoEvidence) {
  Problem P = load("unreal/sum");
  AlgoOptions Opts;
  Opts.TimeoutMs = 1;
  Outcome R = runChcChannel(P, Opts);
  ASSERT_EQ(R.V, Verdict::Timeout) << R.Detail;
  EXPECT_EQ(R.Ev.Source, VerdictSource::None);
  EXPECT_TRUE(R.Ev.str().empty());
}

// --- Mode plumbing ------------------------------------------------------===//

TEST(UnrealModeTest, ParseAndResolve) {
  EXPECT_EQ(parseUnrealMode("witness"), UnrealMode::Witness);
  EXPECT_EQ(parseUnrealMode("CHC"), UnrealMode::Chc);
  EXPECT_EQ(parseUnrealMode("Race"), UnrealMode::Race);
  EXPECT_EQ(parseUnrealMode("auto"), UnrealMode::Auto);
  EXPECT_FALSE(parseUnrealMode("bogus").has_value());

  EXPECT_EQ(resolveUnrealMode(UnrealMode::Auto, AlgorithmKind::Portfolio),
            UnrealMode::Race);
  EXPECT_EQ(resolveUnrealMode(UnrealMode::Auto, AlgorithmKind::SE2GIS),
            UnrealMode::Witness);
  EXPECT_EQ(resolveUnrealMode(UnrealMode::Chc, AlgorithmKind::SE2GIS),
            UnrealMode::Chc);
}

TEST(UnrealModeTest, FromEnvParsesAndRejects) {
  ::setenv("SE2GIS_UNREAL", "chc", 1);
  SolverConfig C = SolverConfig::fromEnv();
  EXPECT_EQ(C.Algo.Unreal, UnrealMode::Chc);
  ::setenv("SE2GIS_UNREAL", "nonsense", 1);
  EXPECT_THROW(SolverConfig::fromEnv(), UserError);
  ::unsetenv("SE2GIS_UNREAL");
}

TEST(UnrealModeTest, ChcModeSuppressesWitnessChannel) {
  // Under UnrealMode::Chc the witness loop is disabled, so an unrealizable
  // verdict can only come from the CHC member of the race.
  Problem P = load("unreal/min_no_invariant");
  AlgoOptions Opts;
  Opts.TimeoutMs = 20000;
  Opts.Unreal = UnrealMode::Chc;
  Outcome R = runAlgorithm(AlgorithmKind::SE2GIS, P, Opts);
  if (R.V == Verdict::Unrealizable)
    EXPECT_EQ(R.Ev.Source, VerdictSource::Chc) << R.Ev.str();
}

} // namespace
