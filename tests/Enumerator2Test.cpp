//===- Enumerator2Test.cpp - More PBE enumerator coverage -----------------===//

#include "synth/Enumerator.h"

#include "ast/Simplify.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

GrammarConfig fullGrammar() {
  GrammarConfig G;
  G.AllowMinMax = true;
  G.AllowMul = true;
  G.AllowAbs = true;
  G.AllowMod = true;
  G.Constants = {0, 1, 2};
  return G;
}

Env envOf(const std::vector<std::pair<VarPtr, long long>> &Vals) {
  Env E;
  for (const auto &[V, X] : Vals)
    E[V->Id] = Value::mkInt(X);
  return E;
}

TEST(Enumerator2Test, SynthesizesAbsoluteValue) {
  VarPtr A = freshVar("a", Type::intTy());
  Enumerator En(fullGrammar(), {mkVar(A)});
  std::vector<PbeExample> Ex;
  for (long long V : {-3, -1, 0, 2, 5})
    Ex.push_back(
        PbeExample{envOf({{A, V}}), Value::mkInt(V < 0 ? -V : V)});
  auto T = En.synthesize(Type::intTy(), Ex, 4, Deadline());
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(evalScalarTerm(*T, envOf({{A, -9}}))->getInt(), 9);
}

TEST(Enumerator2Test, SynthesizesParityPredicate) {
  VarPtr A = freshVar("a", Type::intTy());
  Enumerator En(fullGrammar(), {mkVar(A)});
  std::vector<PbeExample> Ex;
  for (long long V : {-2, -1, 0, 1, 2, 3})
    Ex.push_back(PbeExample{envOf({{A, V}}),
                            Value::mkBool(euclidMod(V, 2) == 1)});
  auto T = En.synthesize(Type::boolTy(), Ex, 6, Deadline());
  ASSERT_TRUE(T.has_value());
  EXPECT_TRUE(evalScalarTerm(*T, envOf({{A, 7}}))->getBool());
  EXPECT_FALSE(evalScalarTerm(*T, envOf({{A, 8}}))->getBool());
}

TEST(Enumerator2Test, SynthesizesGeneralProduct) {
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr B = freshVar("b", Type::intTy());
  Enumerator En(fullGrammar(), {mkVar(A), mkVar(B)});
  std::vector<PbeExample> Ex;
  for (long long X : {-2, 1, 3})
    for (long long Y : {-1, 2})
      Ex.push_back(PbeExample{envOf({{A, X}, {B, Y}}), Value::mkInt(X * Y)});
  auto T = En.synthesize(Type::intTy(), Ex, 3, Deadline());
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(evalScalarTerm(*T, envOf({{A, 4}, {B, 5}}))->getInt(), 20);
}

TEST(Enumerator2Test, ConditionalAtLargerSize) {
  // if a > 0 then a else 1: needs ite + comparison + leaves.
  VarPtr A = freshVar("a", Type::intTy());
  Enumerator En(fullGrammar(), {mkVar(A)});
  std::vector<PbeExample> Ex;
  for (long long V : {-5, -1, 0, 2, 7})
    Ex.push_back(PbeExample{envOf({{A, V}}), Value::mkInt(V > 0 ? V : 1)});
  auto T = En.synthesize(Type::intTy(), Ex, 7, Deadline());
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(evalScalarTerm(*T, envOf({{A, -3}}))->getInt(), 1);
  EXPECT_EQ(evalScalarTerm(*T, envOf({{A, 3}}))->getInt(), 3);
}

TEST(Enumerator2Test, TupleParameterProjections) {
  // Leaves include projections of a tuple parameter.
  TypePtr Pair = Type::tupleTy({Type::intTy(), Type::intTy()});
  VarPtr P = freshVar("p", Pair);
  Enumerator En(fullGrammar(), {mkProj(mkVar(P), 0), mkProj(mkVar(P), 1)});
  std::vector<PbeExample> Ex;
  for (long long X : {1, 4})
    for (long long Y : {2, 9}) {
      Env E;
      E[P->Id] = Value::mkTuple({Value::mkInt(X), Value::mkInt(Y)});
      Ex.push_back(PbeExample{E, Value::mkInt(X + Y)});
    }
  auto T = En.synthesize(Type::intTy(), Ex, 3, Deadline());
  ASSERT_TRUE(T.has_value());
}

TEST(Enumerator2Test, ExpiredDeadlineReturnsNothing) {
  VarPtr A = freshVar("a", Type::intTy());
  Enumerator En(fullGrammar(), {mkVar(A)});
  std::vector<PbeExample> Ex;
  Ex.push_back(PbeExample{envOf({{A, 1}}), Value::mkInt(77)});
  Deadline Expired = Deadline::afterMs(0);
  // Size-1 candidates are still tried; the unreachable output forces the
  // loop into the (expired) growth phase.
  EXPECT_FALSE(En.synthesize(Type::intTy(), Ex, 9, Expired).has_value());
}

TEST(Enumerator2Test, ObservationalEquivalencePrunes) {
  // With a single example, many terms collapse to the same signature; the
  // enumerator must still find some term quickly at a small size.
  VarPtr A = freshVar("a", Type::intTy());
  Enumerator En(fullGrammar(), {mkVar(A)});
  std::vector<PbeExample> Ex;
  Ex.push_back(PbeExample{envOf({{A, 2}}), Value::mkInt(4)});
  auto T = En.synthesize(Type::intTy(), Ex, 3, Deadline());
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(evalScalarTerm(*T, envOf({{A, 2}}))->getInt(), 4);
}

} // namespace
