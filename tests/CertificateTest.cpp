//===- CertificateTest.cpp - Spuriousness checking and learning tests -----===//

#include "core/Certificates.h"
#include "core/InvariantInfer.h"
#include "core/Verify.h"
#include "core/Witness.h"

#include "frontend/Elaborate.h"
#include "synth/Grammar.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

/// Fixture around the §1.1 sorted-min problem with its initial
/// approximation T0 = {Elt(a1), Cons(a2, l)}.
struct CertFixture : public ::testing::Test {
  void SetUp() override {
    Prob = loadProblem(se2gis_tests::kMinSortedSrc);
    Approx = std::make_unique<Approximation>(Prob);
    ASSERT_TRUE(Approx->initialize());
    System = Approx->buildSge();
  }

  /// The index of the Cons equation (one elimination variable).
  size_t consEqn() const {
    for (size_t I = 0; I < System.Eqns.size(); ++I)
      if (!Approx->terms()[System.Eqns[I].TermIndex].Parts.Alpha.empty())
        return I;
    ADD_FAILURE() << "no Cons equation";
    return 0;
  }

  /// Builds a witness-model over the Cons equation's variables.
  WitnessModel model(long long HeadVal, long long MinTailVal) {
    const ApproxTerm &AT =
        Approx->terms()[System.Eqns[consEqn()].TermIndex];
    WitnessModel WM;
    WM.EqnIndex = consEqn();
    for (const VarPtr &V : freeVars(AT.Parts.Rhs))
      if (V->Ty->isInt()) {
        bool IsElim = false;
        for (const auto &[O, E] : AT.Parts.Alpha)
          IsElim |= E->Id == V->Id;
        WM.M.bind(V, Value::mkInt(IsElim ? MinTailVal : HeadVal));
      }
    return WM;
  }

  Problem Prob;
  std::unique_ptr<Approximation> Approx;
  Sge System;
};

TEST_F(CertFixture, CompatibilityBuildsInverseModel) {
  CertificateChecker Checker(Prob, *Approx);
  const ApproxTerm &AT = Approx->terms()[System.Eqns[consEqn()].TermIndex];
  WitnessModel WM = model(1, 0);
  TermPtr Compat = Checker.compatibility(AT, WM.M);
  // Must equate the reference applied to the tail with the model's value.
  EXPECT_TRUE(containsCall(Compat));
  EXPECT_NE(Compat->str().find("lmin"), std::string::npos);
}

TEST_F(CertFixture, Example57WitnessIsSpuriousMistyped) {
  // Example 5.7: models [a2<-1, vl<-0] and [a2<-1, vl<-1] — the first
  // contradicts sortedness (head 1, tail minimum 0), so the witness is
  // spurious with a mistyped certificate.
  FunctionalWitness W;
  W.First = model(1, 0);
  W.Second = model(1, 1);
  CertificateChecker Checker(Prob, *Approx);
  WitnessCheckResult R = Checker.check(W, System, Deadline::afterMs(20000));
  ASSERT_EQ(R.Verdict, WitnessVerdict::Spurious);
  ASSERT_GE(R.Certs.size(), 1u);
  EXPECT_EQ(R.Certs[0].Kind, CertKind::Mistyped);
  // The second model (1,1) is realizable: Cons(1, Elt(1)) is sorted.
  EXPECT_GE(R.ValidInputs.size(), 1u);
}

TEST_F(CertFixture, CompatibleSortedModelsMakeValidWitness) {
  // Both models satisfiable under sortedness (head <= tail minimum) yet
  // with different vl for equal a2: a genuinely valid witness.
  FunctionalWitness W;
  W.First = model(0, 1);
  W.Second = model(0, 2);
  CertificateChecker Checker(Prob, *Approx);
  WitnessCheckResult R = Checker.check(W, System, Deadline::afterMs(20000));
  EXPECT_EQ(R.Verdict, WitnessVerdict::Valid);
  EXPECT_EQ(R.ValidInputs.size(), 2u);
}

TEST_F(CertFixture, LearnerInfersHeadLeqMinInvariant) {
  // Learning from the Example 5.7 certificate must produce a predicate
  // that is false at (a2=1, vl=0) and verified against sortedness.
  FunctionalWitness W;
  W.First = model(1, 0);
  W.Second = model(1, 1);
  CertificateChecker Checker(Prob, *Approx);
  WitnessCheckResult R = Checker.check(W, System, Deadline::afterMs(20000));
  ASSERT_EQ(R.Verdict, WitnessVerdict::Spurious);

  InvariantLearner Learner(Prob, *Approx, inferGrammar(Prob));
  auto Inv = Learner.learn(R.Certs[0], Deadline::afterMs(30000));
  ASSERT_TRUE(Inv.has_value());
  EXPECT_EQ(Inv->Kind, CertKind::Mistyped);
  // The predicate excludes the negative model.
  Env E;
  for (const VarPtr &D : Inv->Domain)
    E[D->Id] = R.Certs[0].M.lookup(D->Id);
  EXPECT_FALSE(evalScalarTerm(Inv->Pred, E)->getBool());
  // Applying it strengthens the guard so the original witness dies
  // (Proposition 7.4).
  Learner.apply(*Inv);
  Sge Strengthened = Approx->buildSge();
  bool SomeGuardNontrivial = false;
  for (const SgeEquation &Eq : Strengthened.Eqns)
    SomeGuardNontrivial |= Eq.Guard->str() != "true";
  EXPECT_TRUE(SomeGuardNontrivial);
}

TEST(VerifyTest, AcceptsCorrectAndRejectsWrongSolutions) {
  Problem P = loadProblem(se2gis_tests::kSumSrc);
  // Correct: f0 = 0, f1(a, v) = a + v.
  UnknownBindings Good;
  Good["f0"] = UnknownDef{{}, mkIntLit(0)};
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr V = freshVar("v", Type::intTy());
  Good["f1"] = UnknownDef{{A, V}, mkAdd(mkVar(A), mkVar(V))};
  VerifyOptions Opts;
  VerifyResult R = verifySolution(P, Good, Opts, Deadline::afterMs(20000));
  EXPECT_EQ(R.Status, VerifyStatus::ProvedInductive);

  // Wrong: f1 ignores the element.
  UnknownBindings Bad = Good;
  VarPtr A2 = freshVar("a", Type::intTy());
  VarPtr V2 = freshVar("v", Type::intTy());
  Bad["f1"] = UnknownDef{{A2, V2}, mkVar(V2)};
  VerifyResult R2 = verifySolution(P, Bad, Opts, Deadline::afterMs(20000));
  ASSERT_EQ(R2.Status, VerifyStatus::Counterexample);
  ASSERT_NE(R2.CexTheta, nullptr);
  // The counterexample must really distinguish the two.
  Interpreter Ref(*P.Prog), Tgt(*P.Prog);
  Tgt.bindUnknowns(&Bad);
  EXPECT_FALSE(valueEquals(Ref.call("lsum", {R2.CexTheta}),
                           Tgt.call("tsum", {R2.CexTheta})));
}

TEST(WitnessProjectionTest, ModelsCoverEquationVariables) {
  // Witness models must assign every variable of their equation so that
  // compatibility constraints are complete.
  Problem P = loadProblem(se2gis_tests::kMinUnsortedSrc);
  Approximation A(P);
  ASSERT_TRUE(A.initialize());
  Sge S = A.buildSge();
  auto W = findFunctionalWitness(S, 2000, Deadline());
  ASSERT_TRUE(W.has_value());
  for (const WitnessModel *WM : {&W->First, &W->Second}) {
    const SgeEquation &E = S.Eqns[WM->EqnIndex];
    for (const TermPtr &Side : {E.Guard, E.Lhs, E.Rhs})
      for (const VarPtr &V : freeVars(Side))
        EXPECT_NE(WM->M.lookup(V->Id), nullptr) << V->Name;
  }
}

} // namespace
