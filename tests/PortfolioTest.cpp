//===- PortfolioTest.cpp - Portfolio mode and cancellation tests ----------===//

#include "core/Portfolio.h"

#include "suite/Benchmarks.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

TEST(DeadlineTest, CancellationFlagExpiresDeadline) {
  std::atomic<bool> Flag{false};
  Deadline D = Deadline::afterMs(1000000);
  D.setCancelFlag(&Flag);
  EXPECT_FALSE(D.expired());
  Flag.store(true);
  EXPECT_TRUE(D.expired());
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline D;
  EXPECT_FALSE(D.expired());
  EXPECT_GT(D.remainingMs(), 1000000);
}

TEST(PortfolioTest, SolvesRealizableBenchmark) {
  Problem P = loadBenchmark(*findBenchmark("list/sum"));
  AlgoOptions Opts;
  Opts.TimeoutMs = 20000;
  Outcome R = runPortfolio(P, Opts);
  EXPECT_EQ(R.V, Verdict::Realizable) << R.Detail;
  EXPECT_FALSE(R.Solution.empty());
}

TEST(PortfolioTest, DetectsUnrealizableBenchmark) {
  Problem P = loadBenchmark(*findBenchmark("unreal/min_no_invariant"));
  AlgoOptions Opts;
  Opts.TimeoutMs = 20000;
  Outcome R = runPortfolio(P, Opts);
  EXPECT_EQ(R.V, Verdict::Unrealizable) << R.Detail;
}

TEST(PortfolioTest, WinsWhereOnlyOneMemberIsFast) {
  // sortedlist/second_smallest needs SE2GIS's invariant inference under
  // partial bounding but is solved nearly instantly by SEGIS+UC's full
  // bounding (paper: 0.867 s vs 0.028 s); the portfolio takes the fast
  // path either way.
  Problem P = loadBenchmark(*findBenchmark("sortedlist/second_smallest"));
  AlgoOptions Opts;
  Opts.TimeoutMs = 30000;
  Outcome R = runPortfolio(P, Opts);
  EXPECT_EQ(R.V, Verdict::Realizable) << R.Detail;
}

TEST(AblationTest, FlagsChangeBehaviourButNotSoundness) {
  // With splitting disabled the ite-skeleton benchmark loses its witness
  // path; whatever the outcome, it must never be a wrong verdict.
  Problem P = loadBenchmark(*findBenchmark("sortedlist/count_lt"));
  AlgoOptions Opts;
  Opts.TimeoutMs = 6000;
  Opts.DisableIteSplitting = true;
  Outcome R = runSE2GIS(P, Opts);
  EXPECT_NE(R.V, Verdict::Unrealizable); // realizable problem: never lie
}

} // namespace
