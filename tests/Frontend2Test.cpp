//===- Frontend2Test.cpp - Additional frontend edge-case tests ------------===//

#include "frontend/Elaborate.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

TEST(Lexer2Test, LineAndColumnTracking) {
  auto Toks = tokenize("let\n  rec f");
  EXPECT_EQ(Toks[0].Line, 1);
  EXPECT_EQ(Toks[1].Line, 2);
  EXPECT_EQ(Toks[1].Col, 3);
}

TEST(Lexer2Test, PrimedIdentifiers) {
  auto Toks = tokenize("x' y''");
  EXPECT_EQ(Toks[0].Text, "x'");
  EXPECT_EQ(Toks[1].Text, "y''");
}

TEST(Lexer2Test, MinusVersusLineComment) {
  // A single '-' is the operator; '--' starts a comment.
  auto Toks = tokenize("a - b -- gone");
  ASSERT_EQ(Toks.size(), 4u); // a, -, b, eof
  EXPECT_EQ(Toks[1].Kind, TokKind::Minus);
}

TEST(Parser2Test, UnaryMinusAndNot) {
  SynUnit U = parseUnit("let f (x : int) = -x + 1");
  const SynExpr &B = *U.LetGroups[0].Bindings[0].Body;
  EXPECT_EQ(B.Name, "+");
  EXPECT_EQ(B.Args[0]->K, SynExpr::Kind::Unary);
}

TEST(Parser2Test, NestedLetIn) {
  SynUnit U = parseUnit(R"(
let f (x : int) =
  let a = x + 1 in
  let b, c = (a, a) in
  b + c
)");
  const SynExpr &B = *U.LetGroups[0].Bindings[0].Body;
  EXPECT_EQ(B.K, SynExpr::Kind::LetIn);
  EXPECT_EQ(B.Args[1]->K, SynExpr::Kind::LetIn);
  EXPECT_EQ(B.Args[1]->LetVars.size(), 2u);
}

TEST(Parser2Test, ConstructorWithTupleArgument) {
  SynUnit U = parseUnit("let f (x : int) = Pair (x, x + 1)");
  const SynExpr &B = *U.LetGroups[0].Bindings[0].Body;
  EXPECT_EQ(B.K, SynExpr::Kind::App);
  EXPECT_TRUE(B.BoolValue); // constructor marker
  EXPECT_EQ(B.Args.size(), 2u);
}

TEST(Parser2Test, MissingArrowInRuleRejected) {
  EXPECT_THROW(parseUnit("let rec f = function | Nil 0"), UserError);
}

TEST(Parser2Test, UnterminatedDirectiveRejected) {
  EXPECT_THROW(parseUnit("synthesize t"), UserError);
}

TEST(Elaborate2Test, BuiltinShadowing) {
  // A user-defined `min` takes priority over the builtin.
  const char *Src = R"(
type list = Elt of int | Cons of int * list
let min (a : int) (b : int) = if a < b then a else b
let rec lmin = function
  | Elt a -> a
  | Cons (a, l) -> min a (lmin l)
let rec t : int = function
  | Elt a -> $u a
  | Cons (a, l) -> $v a (t l)
synthesize t equiv lmin
)";
  Problem P = loadProblem(Src);
  EXPECT_NE(P.Prog->findFunction("min"), nullptr);
}

TEST(Elaborate2Test, TypeMismatchDiagnosed) {
  const char *Src = R"(
type list = Elt of int | Cons of int * list
let rec f = function
  | Elt a -> a
  | Cons (a, l) -> a && f l
synthesize f equiv f
)";
  EXPECT_THROW(loadProblem(Src), UserError);
}

TEST(Elaborate2Test, WrongCtorArityDiagnosed) {
  const char *Src = R"(
type list = Elt of int | Cons of int * list
let rec f = function
  | Elt a -> Cons a
  | Cons (a, l) -> f l
synthesize f equiv f
)";
  EXPECT_THROW(loadProblem(Src), UserError);
}

TEST(Elaborate2Test, MixedDatatypeRuleRejected) {
  const char *Src = R"(
type alist = ANil | ACons of int * alist
type blist = BNil | BCons of int * blist
let rec f : int = function
  | ANil -> 0
  | BCons (a, l) -> a
synthesize f equiv f
)";
  EXPECT_THROW(loadProblem(Src), UserError);
}

TEST(Elaborate2Test, DeepTupleTypesInAnnotations) {
  const char *Src = R"(
type list = Nil | Cons of int * list
let pick (p : (int * int) * bool) = let q, b = p in if b then 1 else 0
let rec f = function
  | Nil -> 0
  | Cons (a, l) -> a + f l
let rec t : int = function
  | Nil -> $u0
  | Cons (a, l) -> $u1 a (t l)
synthesize t equiv f
)";
  Problem P = loadProblem(Src);
  const RecFunction *Pick = P.Prog->findFunction("pick");
  ASSERT_NE(Pick, nullptr);
  EXPECT_TRUE(Pick->getParams()[0]->Ty->isTuple());
}

TEST(Elaborate2Test, EnsuresMustBeUnaryPredicate) {
  const char *Src = R"(
type list = Nil | Cons of int * list
let rec f = function
  | Nil -> 0
  | Cons (a, l) -> a + f l
let bad (x : int) (y : int) = x > y
let rec t : int = function
  | Nil -> $u0
  | Cons (a, l) -> $u1 a (t l)
synthesize t equiv f ensures bad
)";
  EXPECT_THROW(loadProblem(Src), UserError);
}

} // namespace
