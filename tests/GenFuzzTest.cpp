//===- GenFuzzTest.cpp - Generator, shrinker, and corpus replay tests -----===//
//
// Covers the three halves of the fuzzing subsystem that don't need a
// solver run: deterministic sampling, greedy shrinking against synthetic
// predicates, and the committed corpus replaying clean through the full
// differential matrix (the solver-backed half, kept small).
//
//===----------------------------------------------------------------------===//

#include "gen/Differential.h"
#include "gen/Generator.h"
#include "gen/Shrink.h"

#include "core/SynthesisTask.h"
#include "support/PerfCounters.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace se2gis;

namespace {

// --- Determinism --------------------------------------------------------===//

TEST(GeneratorTest, SameSeedSameCases) {
  for (unsigned Case = 0; Case < 20; ++Case) {
    auto A = generateCase(/*GenSeed=*/7, Case);
    auto B = generateCase(/*GenSeed=*/7, Case);
    ASSERT_TRUE(A && B) << Case;
    EXPECT_EQ(caseSource(*A), caseSource(*B)) << Case;
  }
}

TEST(GeneratorTest, DifferentSeedsDiverge) {
  // Not every individual case differs, but across a window the streams
  // must not be identical.
  unsigned Differences = 0;
  for (unsigned Case = 0; Case < 10; ++Case) {
    auto A = generateCase(/*GenSeed=*/7, Case);
    auto B = generateCase(/*GenSeed=*/8, Case);
    ASSERT_TRUE(A && B);
    if (caseSource(*A) != caseSource(*B))
      ++Differences;
  }
  EXPECT_GT(Differences, 0u);
}

TEST(GeneratorTest, CasesAreIndependentOfEarlierCases) {
  // Case N's source depends only on (seed, N), never on how many attempts
  // earlier cases burned — the per-case RNG stream is keyed, not shared.
  auto Late = generateCase(/*GenSeed=*/7, 15);
  for (unsigned Prefix = 0; Prefix < 15; ++Prefix)
    generateCase(/*GenSeed=*/7, Prefix);
  auto LateAgain = generateCase(/*GenSeed=*/7, 15);
  ASSERT_TRUE(Late && LateAgain);
  EXPECT_EQ(caseSource(*Late), caseSource(*LateAgain));
}

TEST(GeneratorTest, CountsGenerationInPerfCounters) {
  PerfSnapshot Before = snapshotPerf();
  for (unsigned Case = 0; Case < 5; ++Case)
    generateCase(/*GenSeed=*/11, Case);
  PerfSnapshot Delta = snapshotPerf().since(Before);
  EXPECT_GE(Delta.get(PerfCounter::GenCases), 5u);
}

TEST(GeneratorTest, GenSeedComesFromEnvironment) {
  ::setenv("SE2GIS_GEN_SEED", "123", 1);
  SolverConfig C = SolverConfig::fromEnv();
  ::unsetenv("SE2GIS_GEN_SEED");
  EXPECT_EQ(C.GenSeed, 123u);
  EXPECT_EQ(SolverConfig::fromEnv().GenSeed, 0u);
}

// --- Shrinking ----------------------------------------------------------===//

/// A deterministic seed-scan for a case with the structure a test needs.
template <typename Pred> GenCase findCase(Pred Want) {
  for (unsigned Case = 0; Case < 200; ++Case) {
    auto C = generateCase(/*GenSeed=*/99, Case);
    if (C && Want(*C))
      return *C;
  }
  ADD_FAILURE() << "no seed-99 case matches the structural predicate";
  return GenCase{};
}

TEST(ShrinkTest, ShrinksToMinimalStructure) {
  // "Fails" unconditionally, so everything optional must go. The minimal
  // reproducer is the base constructor alone (a one-value finite type),
  // no optional features, trivial bodies.
  GenCase Fat = findCase([](const GenCase &C) {
    return C.Ctors.size() >= 3 && C.WithInvariant && C.HasExtraParam;
  });
  auto AlwaysFails = [](const GenCase &) { return true; };
  GenCase Min = shrinkCase(Fat, AlwaysFails);
  EXPECT_EQ(Min.Ctors.size(), 1u);
  EXPECT_FALSE(Min.WithInvariant);
  EXPECT_FALSE(Min.WithExplicitRepr);
  EXPECT_FALSE(Min.HasExtraParam);
  for (const GenCtor &Ct : Min.Ctors)
    EXPECT_EQ(Ct.IntFields, 0u);
  for (const auto &Args : Min.TargetArgs)
    EXPECT_TRUE(Args.empty());
  // Shrunk cases must still load through the real frontend.
  EXPECT_NO_THROW(loadCase(Min));
}

TEST(ShrinkTest, PreservesThePredicate) {
  // "Fails" iff the invariant is present: shrinking must keep it while
  // discarding everything else it can.
  GenCase Fat = findCase([](const GenCase &C) {
    return C.WithInvariant && C.Ctors.size() >= 3;
  });
  auto NeedsInvariant = [](const GenCase &C) { return C.WithInvariant; };
  GenCase Min = shrinkCase(Fat, NeedsInvariant);
  EXPECT_TRUE(Min.WithInvariant);
  EXPECT_EQ(Min.Ctors.size(), 1u);
  EXPECT_NO_THROW(loadCase(Min));
}

TEST(ShrinkTest, RespectsTheEvaluationBudget) {
  GenCase Fat = findCase([](const GenCase &C) { return C.Ctors.size() >= 3; });
  ShrinkStats SS;
  shrinkCase(Fat, [](const GenCase &) { return true; }, /*MaxEvals=*/7, &SS);
  EXPECT_LE(SS.Attempts, 7u);
}

TEST(ShrinkTest, ReturnsInputWhenNothingShrinks) {
  GenCase Min = shrinkCase(
      findCase([](const GenCase &C) { return C.Ctors.size() >= 2; }),
      [](const GenCase &) { return false; });
  // Nothing "still fails", so no candidate is ever accepted.
  EXPECT_EQ(caseSource(Min),
            caseSource(findCase(
                [](const GenCase &C) { return C.Ctors.size() >= 2; })));
}

// --- Corpus replay ------------------------------------------------------===//

TEST(FuzzCorpusTest, CommittedReproducersStayFixed) {
  // Every shrunk reproducer the fuzzer ever committed must keep passing
  // the full differential matrix: these are regression tests for real
  // bugs found by fuzzing. TimeoutOnly is tolerated (slow CI), failure
  // kinds are not.
  namespace fs = std::filesystem;
  fs::path Dir(SE2GIS_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(fs::exists(Dir)) << Dir;
  DiffOptions Opts;
  Opts.TimeoutMs = 10000;
  std::vector<FuzzConfigSpec> Matrix = defaultMatrix(/*Full=*/false);
  unsigned Replayed = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (E.path().extension() != ".se2")
      continue;
    SCOPED_TRACE(E.path().filename().string());
    std::ifstream In(E.path());
    ASSERT_TRUE(In.good());
    std::ostringstream SS;
    SS << In.rdbuf();
    CaseReport Rep = runSourceDifferential(SS.str(), Replayed, Matrix, Opts);
    EXPECT_FALSE(isFailure(Rep.Kind)) << Rep.str();
    ++Replayed;
  }
  EXPECT_GT(Replayed, 0u) << "corpus directory holds no .se2 cases";
}

TEST(FuzzHarnessTest, InjectedBugIsCaughtAndShrunk) {
  // End-to-end self-test of the failure path on healthy code: flip one
  // verdict, expect a Contradiction, and expect shrinking to keep it
  // while making the case no larger.
  DiffOptions Opts;
  Opts.TimeoutMs = 4000;
  Opts.InjectBug = true;
  std::vector<FuzzConfigSpec> Matrix = defaultMatrix(/*Full=*/false);
  // Seed-1 case 0 resolves quickly and conclusively on every config.
  auto C = generateCase(/*GenSeed=*/1, 0);
  ASSERT_TRUE(C);
  CaseReport Rep = runCaseDifferential(*C, Matrix, Opts);
  ASSERT_EQ(Rep.Kind, FailureKind::Contradiction) << Rep.str();
  auto StillFails = [&](const GenCase &Cand) {
    return runCaseDifferential(Cand, Matrix, Opts).Kind ==
           FailureKind::Contradiction;
  };
  ShrinkStats SS;
  GenCase Min = shrinkCase(*C, StillFails, /*MaxEvals=*/40, &SS);
  EXPECT_LE(caseSource(Min).size(), caseSource(*C).size());
  EXPECT_EQ(runCaseDifferential(Min, Matrix, Opts).Kind,
            FailureKind::Contradiction);
}

} // namespace
