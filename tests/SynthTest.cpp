//===- SynthTest.cpp - Grammar, enumerator, and SGE solver tests ----------===//

#include "synth/SgeSolver.h"

#include "ast/Simplify.h"

#include "frontend/Elaborate.h"
#include "synth/Grammar.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

GrammarConfig defaultGrammar() {
  GrammarConfig G;
  G.AllowMinMax = true;
  return G;
}

TEST(GrammarTest, InferredFromProblem) {
  Problem P = loadProblem(se2gis_tests::kMinSortedSrc);
  GrammarConfig G = inferGrammar(P);
  EXPECT_TRUE(G.AllowMinMax); // `min` appears in the reference
  EXPECT_FALSE(G.AllowMul);
  EXPECT_FALSE(G.AllowDiv);
  EXPECT_TRUE(G.Constants.count(0));
  EXPECT_TRUE(G.Constants.count(1));
}

TEST(EnumeratorTest, EvalScalarTerm) {
  VarPtr X = freshVar("x", Type::intTy());
  Env E;
  E[X->Id] = Value::mkInt(5);
  EXPECT_EQ(evalScalarTerm(mkAdd(mkVar(X), mkIntLit(2)), E)->getInt(), 7);
  EXPECT_TRUE(
      evalScalarTerm(mkOp(OpKind::Gt, {mkVar(X), mkIntLit(0)}), E)->getBool());
  EXPECT_EQ(
      evalScalarTerm(mkIte(mkOp(OpKind::Lt, {mkVar(X), mkIntLit(0)}),
                           mkIntLit(1), mkIntLit(2)),
                     E)
          ->getInt(),
      2);
}

TEST(EnumeratorTest, IdentityFunction) {
  VarPtr P = freshVar("p", Type::intTy());
  Enumerator En(defaultGrammar(), {mkVar(P)});
  std::vector<PbeExample> Ex;
  for (long long V : {1, 5, -3})
    Ex.push_back(PbeExample{{{P->Id, Value::mkInt(V)}}, Value::mkInt(V)});
  auto T = En.synthesize(Type::intTy(), Ex, 5, Deadline());
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ((*T)->str(), P->Name);
}

TEST(EnumeratorTest, SynthesizesMin) {
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr B = freshVar("b", Type::intTy());
  Enumerator En(defaultGrammar(), {mkVar(A), mkVar(B)});
  std::vector<PbeExample> Ex;
  auto Add = [&](long long X, long long Y) {
    Ex.push_back(PbeExample{
        {{A->Id, Value::mkInt(X)}, {B->Id, Value::mkInt(Y)}},
        Value::mkInt(std::min(X, Y))});
  };
  Add(1, 2);
  Add(4, 3);
  Add(-1, -5);
  Add(0, 0);
  auto T = En.synthesize(Type::intTy(), Ex, 5, Deadline());
  ASSERT_TRUE(T.has_value());
  // min(a,b) or an ite equivalent; check semantics on a fresh pair.
  Env E;
  E[A->Id] = Value::mkInt(9);
  E[B->Id] = Value::mkInt(-9);
  EXPECT_EQ(evalScalarTerm(*T, E)->getInt(), -9);
}

TEST(EnumeratorTest, SynthesizesPredicate) {
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr B = freshVar("b", Type::intTy());
  Enumerator En(defaultGrammar(), {mkVar(A), mkVar(B)});
  // Learn a <= b from labelled points.
  std::vector<PbeExample> Ex;
  auto Add = [&](long long X, long long Y, bool Label) {
    Ex.push_back(PbeExample{
        {{A->Id, Value::mkInt(X)}, {B->Id, Value::mkInt(Y)}},
        Value::mkBool(Label)});
  };
  Add(1, 2, true);
  Add(2, 1, false);
  Add(0, 0, true);
  Add(5, -1, false);
  auto T = En.synthesize(Type::boolTy(), Ex, 5, Deadline());
  ASSERT_TRUE(T.has_value());
  Env E;
  E[A->Id] = Value::mkInt(-7);
  E[B->Id] = Value::mkInt(7);
  EXPECT_TRUE(evalScalarTerm(*T, E)->getBool());
}

TEST(EnumeratorTest, TupleOutputComponentwise) {
  VarPtr A = freshVar("a", Type::intTy());
  Enumerator En(defaultGrammar(), {mkVar(A)});
  std::vector<PbeExample> Ex;
  for (long long V : {2, -4}) {
    Ex.push_back(PbeExample{
        {{A->Id, Value::mkInt(V)}},
        Value::mkTuple({Value::mkInt(V + 1), Value::mkBool(V > 0)})});
  }
  auto T = En.synthesize(Type::tupleTy({Type::intTy(), Type::boolTy()}), Ex,
                         6, Deadline());
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ((*T)->getKind(), TermKind::Tuple);
}

TEST(EnumeratorTest, EmptyExamplesGiveDefault) {
  Enumerator En(defaultGrammar(), {});
  auto T = En.synthesize(Type::intTy(), {}, 3, Deadline());
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ((*T)->str(), "0");
}

TEST(EnumeratorTest, RespectsMaxSize) {
  VarPtr A = freshVar("a", Type::intTy());
  GrammarConfig G; // no min/max
  G.Constants = {0};
  Enumerator En(G, {mkVar(A)});
  // a*7-ish target is not expressible at size 2 without constants.
  std::vector<PbeExample> Ex;
  Ex.push_back(PbeExample{{{A->Id, Value::mkInt(1)}}, Value::mkInt(100)});
  EXPECT_FALSE(En.synthesize(Type::intTy(), Ex, 2, Deadline()).has_value());
}

TEST(SgeSolverHelpers, ValueToTermRoundTrip) {
  ValuePtr V = Value::mkTuple({Value::mkInt(-3), Value::mkBool(true)});
  TermPtr T = valueToTerm(V);
  EXPECT_TRUE(valueEquals(evalScalarTerm(T, {}), V));
}

TEST(SgeSolverHelpers, ApplySolutionSubstitutes) {
  VarPtr P = freshVar("p", Type::intTy());
  UnknownBindings Defs;
  Defs["u"] = UnknownDef{{P}, mkAdd(mkVar(P), mkIntLit(1))};
  TermPtr T = mkUnknown("u", Type::intTy(), {mkIntLit(4)});
  EXPECT_EQ(simplify(applySolution(T, Defs))->str(), "5");
}

// The paper's Example 4.7: E(T, P) for mins/min with T = {Elt(a1),
// Cons(a2, l)}.
struct MinsSgeFixture : public ::testing::Test {
  void SetUp() override {
    A1 = freshVar("a1", Type::intTy());
    A2 = freshVar("a2", Type::intTy());
    Vl = freshVar("vl", Type::intTy());
    Unknowns = {
        UnknownSig{"b1", {Type::intTy()}, Type::intTy()},
        UnknownSig{"b2", {Type::intTy()}, Type::intTy()},
    };
    // b1(a1) = a1
    Eq1 = SgeEquation{mkTrue(),
                      mkUnknown("b1", Type::intTy(), {mkVar(A1)}),
                      mkVar(A1), 0};
    // b2(a2) = min(a2, vl)
    Eq2 = SgeEquation{mkTrue(),
                      mkUnknown("b2", Type::intTy(), {mkVar(A2)}),
                      mkOp(OpKind::Min, {mkVar(A2), mkVar(Vl)}), 1};
  }

  VarPtr A1, A2, Vl;
  std::vector<UnknownSig> Unknowns;
  SgeEquation Eq1, Eq2;
};

TEST_F(MinsSgeFixture, UnguardedSystemIsInfeasible) {
  // Example 4.7: with p2 = true the system is unrealizable (b2 would have
  // to know vl).
  Sge System;
  System.Eqns = {Eq1, Eq2};
  SgeSolver Solver(Unknowns, defaultGrammar());
  SgeResult R = Solver.solve(System, Deadline::afterMs(20000));
  EXPECT_EQ(R.Status, SgeStatus::Infeasible);
}

TEST_F(MinsSgeFixture, GuardedSystemIsSolved) {
  // With the inferred guard a2 <= vl the system has the solution
  // b1 = b2 = identity.
  Sge System;
  SgeEquation GuardedEq2 = Eq2;
  GuardedEq2.Guard = mkOp(OpKind::Le, {mkVar(A2), mkVar(Vl)});
  System.Eqns = {Eq1, GuardedEq2};
  SgeSolver Solver(Unknowns, defaultGrammar());
  SgeResult R = Solver.solve(System, Deadline::afterMs(20000));
  ASSERT_EQ(R.Status, SgeStatus::Solved);

  // Check b2 semantically: under a2 <= vl it must return a2.
  const UnknownDef &B2 = R.Solution.at("b2");
  Env E;
  E[B2.Params[0]->Id] = Value::mkInt(-5);
  EXPECT_EQ(evalScalarTerm(B2.Body, E)->getInt(), -5);
}

TEST(SgeSolverTest, SolvesSumSkeletonEquations) {
  // f0 = 0, f1(a, v) = a + v  (from the lsum example, one unfolding).
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr V = freshVar("v", Type::intTy());
  std::vector<UnknownSig> Unknowns = {
      UnknownSig{"f0", {}, Type::intTy()},
      UnknownSig{"f1", {Type::intTy(), Type::intTy()}, Type::intTy()},
  };
  Sge System;
  System.Eqns.push_back(SgeEquation{
      mkTrue(), mkUnknown("f0", Type::intTy(), {}), mkIntLit(0), 0});
  System.Eqns.push_back(SgeEquation{
      mkTrue(),
      mkUnknown("f1", Type::intTy(),
                {mkVar(A), mkUnknown("f0", Type::intTy(), {})}),
      mkVar(A), 1});
  System.Eqns.push_back(SgeEquation{
      mkTrue(), mkUnknown("f1", Type::intTy(), {mkVar(A), mkVar(V)}),
      mkAdd(mkVar(A), mkVar(V)), 2});
  SgeSolver Solver(Unknowns, defaultGrammar());
  SgeResult R = Solver.solve(System, Deadline::afterMs(20000));
  ASSERT_EQ(R.Status, SgeStatus::Solved);
  const UnknownDef &F1 = R.Solution.at("f1");
  Env E;
  E[F1.Params[0]->Id] = Value::mkInt(3);
  E[F1.Params[1]->Id] = Value::mkInt(9);
  EXPECT_EQ(evalScalarTerm(F1.Body, E)->getInt(), 12);
}

TEST(SgeSolverTest, FunctionalityConflictDetected) {
  // u(x) with x = 1 must be both 2 and 3 under incompatible equations:
  // u(1) = 2 and u(1) = 3. Infeasible at the very first points.
  std::vector<UnknownSig> Unknowns = {
      UnknownSig{"u", {Type::intTy()}, Type::intTy()}};
  Sge System;
  System.Eqns.push_back(SgeEquation{
      mkTrue(), mkUnknown("u", Type::intTy(), {mkIntLit(1)}), mkIntLit(2),
      0});
  System.Eqns.push_back(SgeEquation{
      mkTrue(), mkUnknown("u", Type::intTy(), {mkIntLit(1)}), mkIntLit(3),
      1});
  SgeSolver Solver(Unknowns, defaultGrammar());
  SgeResult R = Solver.solve(System, Deadline::afterMs(20000));
  EXPECT_EQ(R.Status, SgeStatus::Infeasible);
}

} // namespace
