//===- PropertyTest.cpp - Randomized property tests -----------------------===//
///
/// \file
/// Property-based tests over the foundational invariants:
///  - the simplifier preserves semantics on random scalar terms,
///  - symbolic evaluation agrees with the concrete interpreter on random
///    bounded inputs,
///  - every benchmark's initial approximation is canonical (no datatype
///    variable survives recursion elimination).
///
//===----------------------------------------------------------------------===//

#include "ast/Simplify.h"
#include "core/Approximation.h"
#include "eval/Expand.h"
#include "eval/Interp.h"
#include "eval/SymbolicEval.h"
#include "suite/Benchmarks.h"
#include "synth/Enumerator.h"
#include "synth/SgeSolver.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

/// Small deterministic PRNG (avoids <random> boilerplate, reproducible).
struct Rng {
  unsigned State;
  explicit Rng(unsigned Seed) : State(Seed) {}
  unsigned next() {
    State = State * 1664525u + 1013904223u;
    return State >> 8;
  }
  long long intIn(long long Lo, long long Hi) {
    return Lo + static_cast<long long>(next() % (Hi - Lo + 1));
  }
};

/// Builds a random scalar term of the given type over \p IntVars/BoolVars.
TermPtr randomScalarTerm(Rng &R, bool WantInt,
                         const std::vector<VarPtr> &IntVars,
                         const std::vector<VarPtr> &BoolVars, int Depth) {
  if (Depth <= 0 || R.next() % 4 == 0) {
    if (WantInt) {
      if (!IntVars.empty() && R.next() % 2)
        return mkVar(IntVars[R.next() % IntVars.size()]);
      return mkIntLit(R.intIn(-3, 3));
    }
    if (!BoolVars.empty() && R.next() % 2)
      return mkVar(BoolVars[R.next() % BoolVars.size()]);
    return mkBoolLit(R.next() % 2);
  }
  if (WantInt) {
    switch (R.next() % 6) {
    case 0:
      return mkAdd(randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1),
                   randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1));
    case 1:
      return mkSub(randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1),
                   randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1));
    case 2:
      return mkOp(OpKind::Min,
                  {randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1),
                   randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1)});
    case 3:
      return mkOp(OpKind::Max,
                  {randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1),
                   randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1)});
    case 4:
      return mkOp(OpKind::Neg,
                  {randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1)});
    default:
      return mkIte(randomScalarTerm(R, false, IntVars, BoolVars, Depth - 1),
                   randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1),
                   randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1));
    }
  }
  switch (R.next() % 6) {
  case 0:
    return mkAndList(
        {randomScalarTerm(R, false, IntVars, BoolVars, Depth - 1),
         randomScalarTerm(R, false, IntVars, BoolVars, Depth - 1)});
  case 1:
    return mkOrList(
        {randomScalarTerm(R, false, IntVars, BoolVars, Depth - 1),
         randomScalarTerm(R, false, IntVars, BoolVars, Depth - 1)});
  case 2:
    return mkNot(randomScalarTerm(R, false, IntVars, BoolVars, Depth - 1));
  case 3:
    return mkOp(OpKind::Le,
                {randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1),
                 randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1)});
  case 4:
    return mkEq(randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1),
                randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1));
  default:
    return mkOp(OpKind::Gt,
                {randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1),
                 randomScalarTerm(R, true, IntVars, BoolVars, Depth - 1)});
  }
}

class SimplifierSoundness : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimplifierSoundness, PreservesSemantics) {
  Rng R(GetParam());
  std::vector<VarPtr> IntVars = {freshVar("i", Type::intTy()),
                                 freshVar("j", Type::intTy())};
  std::vector<VarPtr> BoolVars = {freshVar("b", Type::boolTy())};
  for (int Trial = 0; Trial < 40; ++Trial) {
    bool WantInt = R.next() % 2;
    TermPtr T = randomScalarTerm(R, WantInt, IntVars, BoolVars, 4);
    TermPtr S = simplify(T);
    // Idempotence.
    EXPECT_TRUE(termEquals(simplify(S), S)) << S->str();
    // Semantic equivalence on random environments.
    for (int E = 0; E < 6; ++E) {
      Env Environment;
      for (const VarPtr &V : IntVars)
        Environment[V->Id] = Value::mkInt(R.intIn(-4, 4));
      for (const VarPtr &V : BoolVars)
        Environment[V->Id] = Value::mkBool(R.next() % 2);
      EXPECT_TRUE(valueEquals(evalScalarTerm(T, Environment),
                              evalScalarTerm(S, Environment)))
          << "term " << T->str() << " simplified to " << S->str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifierSoundness,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

/// Symbolic evaluation with all-concrete inputs must agree with the
/// concrete interpreter (checked over several benchmark references).
class SymbolicVsConcrete : public ::testing::TestWithParam<const char *> {};

TEST_P(SymbolicVsConcrete, AgreeOnBoundedInputs) {
  const BenchmarkDef *Def = findBenchmark(GetParam());
  ASSERT_NE(Def, nullptr);
  Problem P = loadBenchmark(*Def);
  Interpreter Interp(*P.Prog);
  SymbolicEvaluator SE(*P.Prog);
  const RecFunction *Ref = P.Prog->findFunction(P.Reference);

  Rng R(2026);
  std::function<ValuePtr(const Datatype *, int)> Gen =
      [&](const Datatype *D, int Depth) -> ValuePtr {
    unsigned CI = R.next() % D->numConstructors();
    if (Depth <= 0)
      for (unsigned K = 0; K < D->numConstructors(); ++K)
        if (D->isBaseConstructor(K)) {
          CI = K;
          break;
        }
    const ConstructorDecl &C = D->getConstructor(CI);
    std::vector<ValuePtr> Fields;
    for (const TypePtr &FT : C.Fields) {
      if (FT->isData())
        Fields.push_back(Gen(FT->getDatatype(), Depth - 1));
      else if (FT->isInt())
        Fields.push_back(Value::mkInt(R.intIn(-5, 5)));
      else
        Fields.push_back(Value::mkBool(R.next() % 2));
    }
    return Value::mkData(&C, std::move(Fields));
  };

  for (int Trial = 0; Trial < 15; ++Trial) {
    ValuePtr X = Gen(P.Tau, 3);
    std::vector<ValuePtr> Args;
    std::vector<TermPtr> ArgTerms;
    for (const VarPtr &E : Ref->getParams()) {
      (void)E;
      ValuePtr V = Value::mkInt(R.intIn(-5, 5));
      Args.push_back(V);
      ArgTerms.push_back(valueToTerm(V));
    }
    Args.push_back(X);
    ArgTerms.push_back(shapeOfValue(X)); // fresh scalar leaves...
    // ...so bind them to the concrete scalars via an env-free route:
    // rebuild the term with literal leaves instead.
    std::function<TermPtr(const ValuePtr &)> Lit =
        [&](const ValuePtr &V) -> TermPtr {
      if (V->isData()) {
        std::vector<TermPtr> Fs;
        for (const ValuePtr &F : V->getElems())
          Fs.push_back(Lit(F));
        return mkCtor(V->getCtor(), std::move(Fs));
      }
      return valueToTerm(V);
    };
    ArgTerms.back() = Lit(X);

    ValuePtr Want = Interp.call(P.Reference, Args);
    TermPtr Sym = SE.eval(mkCall(P.Reference, P.RetTy, ArgTerms));
    ValuePtr Got = evalScalarTerm(Sym, {});
    EXPECT_TRUE(valueEquals(Want, Got))
        << P.Reference << " on " << X->str() << ": interp " << Want->str()
        << ", symbolic " << Sym->str();
  }
}

INSTANTIATE_TEST_SUITE_P(References, SymbolicVsConcrete,
                         ::testing::Values("list/sum", "list/mps",
                                           "tree/height", "bst/frequency",
                                           "alist/sum_matching",
                                           "sortedlist/largest_diff"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           std::string N = I.param;
                           for (char &C : N)
                             if (!std::isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

TEST(ApproximationProperty, EveryBenchmarkInitializesCanonically) {
  for (const BenchmarkDef &Def : allBenchmarks()) {
    Problem P = loadBenchmark(Def);
    Approximation A(P);
    ASSERT_TRUE(A.initialize()) << Def.Name;
    for (const ApproxTerm &T : A.terms()) {
      EXPECT_TRUE(T.Parts.Canonical) << Def.Name;
      // Canonicity: no datatype variable survives on either side.
      for (const TermPtr &Side : {T.Parts.Lhs, T.Parts.Rhs})
        for (const VarPtr &V : freeVars(Side))
          EXPECT_TRUE(V->Ty->isScalar())
              << Def.Name << ": " << Side->str();
    }
  }
}

} // namespace
