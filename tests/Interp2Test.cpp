//===- Interp2Test.cpp - Interpreter and symbolic-eval edge cases ---------===//

#include "eval/Interp.h"
#include "eval/SymbolicEval.h"
#include "synth/Enumerator.h"

#include "frontend/Elaborate.h"
#include "support/Diagnostics.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

struct Interp2Fixture : public ::testing::Test {
  void SetUp() override {
    Prob = loadProblem(se2gis_tests::kSumSrc);
    List = Prob.Theta;
    Nil = List->findConstructor("Nil");
    Cons = List->findConstructor("Cons");
  }
  ValuePtr list(std::initializer_list<long long> Xs) {
    ValuePtr R = Value::mkData(Nil, {});
    std::vector<long long> V(Xs);
    for (size_t I = V.size(); I-- > 0;)
      R = Value::mkData(Cons, {Value::mkInt(V[I]), R});
    return R;
  }
  Problem Prob;
  const Datatype *List = nullptr;
  const ConstructorDecl *Nil = nullptr;
  const ConstructorDecl *Cons = nullptr;
};

TEST_F(Interp2Fixture, EmptyListBaseCase) {
  Interpreter I(*Prob.Prog);
  EXPECT_EQ(I.call("lsum", {list({})})->getInt(), 0);
  EXPECT_EQ(I.call("lsum", {list({1, 2, 3, 4})})->getInt(), 10);
}

TEST_F(Interp2Fixture, UnboundVariableDiagnosed) {
  Interpreter I(*Prob.Prog);
  VarPtr X = freshVar("x", Type::intTy());
  EXPECT_THROW(I.eval(mkVar(X), {}), UserError);
}

TEST_F(Interp2Fixture, UnknownWithoutBindingsDiagnosed) {
  Interpreter I(*Prob.Prog);
  EXPECT_THROW(I.eval(mkUnknown("u", Type::intTy(), {}), {}), UserError);
}

TEST_F(Interp2Fixture, ArityMismatchDiagnosed) {
  Interpreter I(*Prob.Prog);
  EXPECT_THROW(I.call("lsum", {}), UserError);
  EXPECT_THROW(I.call("nosuch", {list({})}), UserError);
}

TEST_F(Interp2Fixture, ShortCircuitAvoidsDivergence) {
  // false && loop() must not evaluate loop(): encode with a self-calling
  // plain function and tight fuel.
  auto Prog = std::make_shared<Program>();
  VarPtr X = namedVar("x", Type::intTy());
  Prog->addFunction(RecFunction::makePlain(
      "spin", {X}, mkCall("spin", Type::intTy(), {mkVar(X)})));
  Interpreter I(*Prog, /*MaxSteps=*/100);
  TermPtr Guarded = mkAndList(
      {mkFalse(), mkEq(mkCall("spin", Type::intTy(), {mkIntLit(0)}),
                       mkIntLit(1))});
  EXPECT_FALSE(I.eval(Guarded, {})->getBool());
}

TEST_F(Interp2Fixture, SymbolicEvalMatchesInterpreterOnNestedIte) {
  SymbolicEvaluator SE(*Prob.Prog);
  Interpreter I(*Prob.Prog);
  // lsum(Cons(ite(c, 1, 2), Nil)) under both values of c.
  VarPtr C = freshVar("c", Type::boolTy());
  TermPtr T = mkCall(
      "lsum", Type::intTy(),
      {mkCtor(Cons, {mkIte(mkVar(C), mkIntLit(1), mkIntLit(2)),
                     mkCtor(Nil, {})})});
  TermPtr R = SE.eval(T);
  Env TrueEnv{{C->Id, Value::mkBool(true)}};
  Env FalseEnv{{C->Id, Value::mkBool(false)}};
  EXPECT_EQ(evalScalarTerm(R, TrueEnv)->getInt(), 1);
  EXPECT_EQ(evalScalarTerm(R, FalseEnv)->getInt(), 2);
}

TEST_F(Interp2Fixture, SolutionBindingSubstitutionInSymbolicEval) {
  UnknownBindings B;
  VarPtr P0 = freshVar("p", Type::intTy());
  VarPtr P1 = freshVar("q", Type::intTy());
  B["f0"] = UnknownDef{{}, mkIntLit(0)};
  B["f1"] = UnknownDef{{P0, P1}, mkAdd(mkVar(P0), mkVar(P1))};
  SymbolicEvaluator SE(*Prob.Prog);
  SE.bindUnknowns(&B);
  TermPtr T = mkCall(
      "tsum", Type::intTy(),
      {mkCtor(Cons, {mkIntLit(5),
                     mkCtor(Cons, {mkIntLit(6), mkCtor(Nil, {})})})});
  EXPECT_EQ(SE.eval(T)->str(), "11");
}

TEST(ValueEdgeTest, TupleOrderingIsLexicographic) {
  ValuePtr A = Value::mkTuple({Value::mkInt(1), Value::mkInt(9)});
  ValuePtr B = Value::mkTuple({Value::mkInt(2), Value::mkInt(0)});
  EXPECT_TRUE(valueLess(A, B));
  EXPECT_FALSE(valueLess(B, A));
}

} // namespace
