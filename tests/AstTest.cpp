//===- AstTest.cpp - Unit tests for types and terms -----------------------===//

#include "ast/Term.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

TEST(TypeTest, ScalarPredicates) {
  EXPECT_TRUE(Type::intTy()->isScalar());
  EXPECT_TRUE(Type::boolTy()->isScalar());
  TypePtr Tup = Type::tupleTy({Type::intTy(), Type::boolTy()});
  EXPECT_TRUE(Tup->isScalar());
  EXPECT_EQ(Tup->tupleElems().size(), 2u);
}

TEST(TypeTest, DatatypeConstruction) {
  Datatype List("list");
  TypePtr ListTy = Type::dataTy(&List);
  EXPECT_FALSE(ListTy->isScalar());
  List.addConstructor("Elt", {Type::intTy()});
  List.addConstructor("Cons", {Type::intTy(), ListTy});
  EXPECT_EQ(List.numConstructors(), 2u);
  EXPECT_TRUE(List.isBaseConstructor(0));
  EXPECT_FALSE(List.isBaseConstructor(1));
  EXPECT_NE(List.findConstructor("Cons"), nullptr);
  EXPECT_EQ(List.findConstructor("Nope"), nullptr);
  EXPECT_TRUE(List.getConstructor(1).isDataField(1));
  EXPECT_FALSE(List.getConstructor(1).isDataField(0));
}

TEST(TypeTest, SameTypeStructural) {
  TypePtr A = Type::tupleTy({Type::intTy(), Type::intTy()});
  TypePtr B = Type::tupleTy({Type::intTy(), Type::intTy()});
  TypePtr C = Type::tupleTy({Type::intTy(), Type::boolTy()});
  EXPECT_TRUE(sameType(A, B));
  EXPECT_FALSE(sameType(A, C));
}

TEST(TermTest, FreshVarsAreDistinct) {
  VarPtr A = freshVar("x", Type::intTy());
  VarPtr B = freshVar("x", Type::intTy());
  EXPECT_NE(A->Id, B->Id);
}

TEST(TermTest, EqualityAndHashing) {
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr A = mkAdd(mkVar(X), mkIntLit(1));
  TermPtr B = mkAdd(mkVar(X), mkIntLit(1));
  TermPtr C = mkAdd(mkVar(X), mkIntLit(2));
  EXPECT_TRUE(termEquals(A, B));
  EXPECT_EQ(A->hash(), B->hash());
  EXPECT_FALSE(termEquals(A, C));
}

TEST(TermTest, FreeVarsInOrder) {
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr Y = freshVar("y", Type::intTy());
  TermPtr T = mkAdd(mkVar(Y), mkAdd(mkVar(X), mkVar(Y)));
  auto FV = freeVars(T);
  ASSERT_EQ(FV.size(), 2u);
  EXPECT_EQ(FV[0]->Id, Y->Id);
  EXPECT_EQ(FV[1]->Id, X->Id);
  EXPECT_TRUE(occursFree(T, X->Id));
  EXPECT_FALSE(occursFree(T, freshVar("z", Type::intTy())->Id));
}

TEST(TermTest, SubstituteReplacesAllOccurrences) {
  VarPtr X = freshVar("x", Type::intTy());
  TermPtr T = mkAdd(mkVar(X), mkVar(X));
  Substitution Map;
  Map.emplace_back(X->Id, mkIntLit(3));
  TermPtr R = substitute(T, Map);
  EXPECT_EQ(R->str(), "3 + 3");
}

TEST(TermTest, FillHoles) {
  TermPtr Frame = mkAdd(mkHole(0, Type::intTy()), mkHole(1, Type::intTy()));
  TermPtr Filled = fillHoles(Frame, {mkIntLit(1), mkIntLit(2)});
  EXPECT_EQ(Filled->str(), "1 + 2");
}

TEST(TermTest, TuplesAndProjections) {
  TermPtr Tup = mkTuple({mkIntLit(1), mkBoolLit(true)});
  EXPECT_TRUE(Tup->getType()->isTuple());
  TermPtr P0 = mkProj(Tup, 0);
  EXPECT_TRUE(P0->getType()->isInt());
  TermPtr P1 = mkProj(Tup, 1);
  EXPECT_TRUE(P1->getType()->isBool());
}

TEST(TermTest, PrinterPrecedence) {
  VarPtr X = freshVar("x", Type::intTy());
  VarPtr Y = freshVar("y", Type::intTy());
  TermPtr T =
      mkOp(OpKind::Mul, {mkAdd(mkVar(X), mkVar(Y)), mkIntLit(2)});
  EXPECT_EQ(T->str(), "(" + X->Name + " + " + Y->Name + ") * 2");
}

TEST(TermTest, TermSizeCountsNodes) {
  VarPtr X = freshVar("x", Type::intTy());
  EXPECT_EQ(termSize(mkVar(X)), 1u);
  EXPECT_EQ(termSize(mkAdd(mkVar(X), mkIntLit(1))), 3u);
}

TEST(TermTest, ContainsUnknownAndCall) {
  TermPtr U = mkUnknown("u0", Type::intTy(), {mkIntLit(1)});
  TermPtr C = mkCall("f", Type::intTy(), {mkIntLit(1)});
  EXPECT_TRUE(containsUnknown(mkAdd(U, mkIntLit(1))));
  EXPECT_FALSE(containsUnknown(C));
  EXPECT_TRUE(containsCall(mkAdd(C, mkIntLit(1))));
  EXPECT_FALSE(containsCall(U));
}

TEST(TermTest, AndOrListEdgeCases) {
  EXPECT_EQ(mkAndList({})->str(), "true");
  EXPECT_EQ(mkOrList({})->str(), "false");
  TermPtr A = mkBoolLit(true);
  EXPECT_TRUE(termEquals(mkAndList({A}), A));
}

} // namespace
