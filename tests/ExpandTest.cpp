//===- ExpandTest.cpp - Expansion and bounded enumeration tests -----------===//

#include "eval/Expand.h"
#include "frontend/Elaborate.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace se2gis;

namespace {

struct ExpandFixture : public ::testing::Test {
  void SetUp() override {
    Prob = loadProblem(se2gis_tests::kMinSortedSrc);
    List = Prob.Theta;
    ListTy = Type::dataTy(List);
    Elt = List->findConstructor("Elt");
    Cons = List->findConstructor("Cons");
  }
  Problem Prob;
  const Datatype *List = nullptr;
  TypePtr ListTy;
  const ConstructorDecl *Elt = nullptr;
  const ConstructorDecl *Cons = nullptr;
};

TEST_F(ExpandFixture, ExpandVariableYieldsOneTermPerCtor) {
  VarPtr L = freshVar("l", ListTy);
  auto Terms = expandVariable(L);
  ASSERT_EQ(Terms.size(), 2u);
  EXPECT_EQ(Terms[0]->getCtor(), Elt);
  EXPECT_EQ(Terms[1]->getCtor(), Cons);
  // Fields are fresh variables of the right types.
  EXPECT_EQ(Terms[1]->getArg(0)->getType()->str(), "int");
  EXPECT_EQ(Terms[1]->getArg(1)->getType()->str(), "list");
}

TEST_F(ExpandFixture, ExpandVarInTermSubstitutes) {
  VarPtr L = freshVar("l", ListTy);
  VarPtr A = freshVar("a", Type::intTy());
  TermPtr T = mkCtor(Cons, {mkVar(A), mkVar(L)});
  auto Terms = expandVarInTerm(T, L);
  ASSERT_EQ(Terms.size(), 2u);
  EXPECT_EQ(Terms[0]->getArg(1)->getCtor(), Elt);
  EXPECT_EQ(Terms[1]->getArg(1)->getCtor(), Cons);
}

TEST_F(ExpandFixture, FirstDataVar) {
  VarPtr L = freshVar("l", ListTy);
  VarPtr A = freshVar("a", Type::intTy());
  EXPECT_EQ(firstDataVar(mkVar(A)), nullptr);
  EXPECT_EQ(firstDataVar(mkCtor(Cons, {mkVar(A), mkVar(L)}))->Id, L->Id);
}

TEST_F(ExpandFixture, BoundedStreamEnumeratesBySize) {
  BoundedTermStream Stream(List);
  TermPtr T1 = Stream.next();
  EXPECT_EQ(T1->getCtor(), Elt); // smallest shape first
  TermPtr T2 = Stream.next();
  EXPECT_EQ(T2->getCtor(), Cons);
  EXPECT_EQ(T2->getArg(1)->getCtor(), Elt);
  TermPtr T3 = Stream.next();
  // Cons(Cons(Elt)) next; all fully bounded.
  EXPECT_EQ(firstDataVar(T3), nullptr);
  EXPECT_GE(termSize(T3), termSize(T2));
}

TEST_F(ExpandFixture, ShapeOfValueRoundTrip) {
  ValuePtr V = Value::mkData(
      Cons, {Value::mkInt(3), Value::mkData(Elt, {Value::mkInt(4)})});
  TermPtr Shape = shapeOfValue(V);
  EXPECT_EQ(Shape->getCtor(), Cons);
  EXPECT_EQ(Shape->getArg(0)->getKind(), TermKind::Var);
  std::vector<std::pair<VarPtr, ValuePtr>> Bindings;
  EXPECT_TRUE(matchShape(Shape, V, Bindings));
}

TEST_F(ExpandFixture, MatchShapeRejectsWrongCtor) {
  ValuePtr V = Value::mkData(Elt, {Value::mkInt(4)});
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr L = freshVar("l", ListTy);
  TermPtr Pattern = mkCtor(Cons, {mkVar(A), mkVar(L)});
  std::vector<std::pair<VarPtr, ValuePtr>> Bindings;
  EXPECT_FALSE(matchShape(Pattern, V, Bindings));
}

TEST_F(ExpandFixture, ExpandTowardUnrollsOneLevel) {
  // Pattern Cons(a, l), value Cons(1, Cons(2, Elt(3))).
  ValuePtr V = Value::mkData(
      Cons, {Value::mkInt(1),
             Value::mkData(Cons, {Value::mkInt(2),
                                  Value::mkData(Elt, {Value::mkInt(3)})})});
  VarPtr A = freshVar("a", Type::intTy());
  VarPtr L = freshVar("l", ListTy);
  TermPtr Pattern = mkCtor(Cons, {mkVar(A), mkVar(L)});
  auto Expanded = expandToward(Pattern, V);
  ASSERT_TRUE(Expanded.has_value());
  // l was replaced by Cons(fresh, fresh).
  EXPECT_EQ((*Expanded)->getArg(1)->getCtor(), Cons);
  // A second step reaches depth 3.
  auto Expanded2 = expandToward(*Expanded, V);
  ASSERT_TRUE(Expanded2.has_value());
  EXPECT_EQ((*Expanded2)->getArg(1)->getArg(1)->getCtor(), Elt);
  // No further data vars match constructors once fully unrolled.
  auto Expanded3 = expandToward(*Expanded2, V);
  EXPECT_FALSE(Expanded3.has_value());
}

} // namespace
