//===- se2gis_cached.cpp - Shared cache tier daemon -------------*- C++-*-===//
///
/// \file
/// The `se2gis_cached` daemon: a standalone shared cache node
/// (src/cachenet/CacheDaemon.h) that owns one DiskStore directory and
/// serves cache.get / cache.put / cache.stats / cache.drain over the
/// service frame protocol, so one solve on any node warms the whole fleet.
///
///   se2gis_cached [options]
///     --listen ADDR          unix:<path> or tcp:<host>:<port>
///                            (default: unix:.se2gis-cached.sock; tcp port
///                            0 binds an ephemeral port, printed on startup)
///     --cache-dir DIR        store directory (default: ./.se2gis-cached;
///                            same on-disk format as a node's --cache-dir)
///     --metrics-addr ADDR    plain-HTTP Prometheus listener (unix:/tcp:)
///     --max-payload-bytes N  admission bound on one entry (default 4 MiB)
///     --compact-bytes N      segment compaction threshold (default 64 MiB)
///     --log-level error|warn|info|debug
///
/// SIGINT/SIGTERM trigger a graceful drain: refuse new entries, fsync the
/// store, exit 0.
///
/// **Client mode** (first argument is a subcommand) talks to a running
/// daemon:
///
///   se2gis_cached ping  --connect ADDR
///   se2gis_cached stats --connect ADDR
///   se2gis_cached drain --connect ADDR
///
/// Client exit codes: 0 success, 4 typed server error, 70 transport
/// failure, 64 usage.
///
//===----------------------------------------------------------------------===//

#include "cachenet/CacheDaemon.h"
#include "service/Protocol.h"
#include "support/Log.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace se2gis;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: se2gis_cached [--listen unix:<path>|tcp:<host>:<port>]\n"
      "                     [--cache-dir DIR]\n"
      "                     [--metrics-addr unix:<path>|tcp:<host>:<port>]\n"
      "                     [--max-payload-bytes N] [--compact-bytes N]\n"
      "                     [--log-level error|warn|info|debug]\n"
      "       se2gis_cached ping|stats|drain --connect ADDR\n");
}

CacheDaemon *ActiveDaemon = nullptr;

void onSignal(int) {
  if (ActiveDaemon)
    ActiveDaemon->requestDrainAsync();
}

/// One-shot framed request against a running daemon: connect (bounded),
/// send, print the response payload, map ok/error onto exit codes.
int clientMain(const char *Method, int argc, char **argv) {
  std::string Connect;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--connect" && I + 1 < argc) {
      Connect = argv[++I];
    } else {
      logf(LogLevel::Error, "cached", "unknown option '%s'", Arg.c_str());
      usage();
      return 64;
    }
  }
  if (Connect.empty()) {
    logf(LogLevel::Error, "cached", "%s needs --connect ADDR", Method);
    usage();
    return 64;
  }

  ServiceAddr Addr;
  std::string Error;
  if (!parseServiceAddr(Connect, Addr, Error)) {
    logf(LogLevel::Error, "cached", "--connect: %s", Error.c_str());
    return 64;
  }
  int Fd = connectTo(Addr, Error, /*TimeoutMs=*/2000);
  if (Fd < 0) {
    logf(LogLevel::Error, "cached", "connect %s: %s", Addr.str().c_str(),
         Error.c_str());
    return 70;
  }
  setFdIoTimeout(Fd, 5000);

  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str(Method));
  std::string Payload;
  if (!writeFrame(Fd, Req.dump()) ||
      readFrame(Fd, Payload) != FrameStatus::Ok) {
    logf(LogLevel::Error, "cached", "transport failure talking to %s",
         Addr.str().c_str());
    closeFd(Fd);
    return 70;
  }
  closeFd(Fd);

  std::printf("%s\n", Payload.c_str());
  JsonValue Resp;
  if (!JsonValue::parse(Payload, Resp, Error))
    return 70;
  return Resp.getBool("ok") ? 0 : 4;
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 1 && argv[1][0] != '-') {
    std::string Sub = argv[1];
    if (Sub == "ping")
      return clientMain("ping", argc, argv);
    if (Sub == "stats")
      return clientMain("cache.stats", argc, argv);
    if (Sub == "drain")
      return clientMain("cache.drain", argc, argv);
    logf(LogLevel::Error, "cached", "unknown subcommand '%s'", Sub.c_str());
    usage();
    return 64;
  }

  CacheDaemonConfig Config;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--listen" && I + 1 < argc) {
      Config.Listen = argv[++I];
    } else if (Arg == "--cache-dir" && I + 1 < argc) {
      Config.Dir = argv[++I];
    } else if (Arg == "--metrics-addr" && I + 1 < argc) {
      Config.MetricsAddr = argv[++I];
    } else if (Arg == "--max-payload-bytes" && I + 1 < argc) {
      long long V = std::atoll(argv[++I]);
      if (V < 1) {
        logf(LogLevel::Error, "cached",
             "--max-payload-bytes must be at least 1");
        return 64;
      }
      Config.MaxPayloadBytes = static_cast<std::size_t>(V);
    } else if (Arg == "--compact-bytes" && I + 1 < argc) {
      long long V = std::atoll(argv[++I]);
      if (V < 1) {
        logf(LogLevel::Error, "cached", "--compact-bytes must be at least 1");
        return 64;
      }
      Config.CompactBytes = static_cast<std::uint64_t>(V);
    } else if (Arg == "--log-level" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto Level = parseLogLevel(Name);
      if (!Level) {
        logf(LogLevel::Error, "cached", "unknown log level '%s'",
             Name.c_str());
        return 64;
      }
      Config.Log.Level = *Level;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      logf(LogLevel::Error, "cached", "unknown option '%s'", Arg.c_str());
      usage();
      return 64;
    }
  }

  const bool HasMetrics = !Config.MetricsAddr.empty();
  CacheDaemon D(std::move(Config));
  std::string Error;
  if (!D.start(Error)) {
    logf(LogLevel::Error, "cached", "%s", Error.c_str());
    return 64;
  }

  ActiveDaemon = &D;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::printf("se2gis_cached: listening on %s\n", D.addr().str().c_str());
  if (HasMetrics)
    std::printf("se2gis_cached: metrics on %s\n",
                D.metricsAddr().str().c_str());
  std::fflush(stdout);

  D.run(); // blocks until a drain (protocol or signal) completes

  ActiveDaemon = nullptr;
  std::printf("se2gis_cached: drained, exiting\n");
  return 0;
}
