//===- se2gis_fuzz.cpp - Differential fuzzing driver ------------*- C++-*-===//
///
/// \file
/// Generator-driven differential fuzzing of the whole solver stack. Each
/// case is sampled (src/gen/Generator.h), printed to the DSL, loaded back
/// through the real frontend, and run across a configuration matrix
/// (src/gen/Differential.h); any disagreement is shrunk to a minimal
/// reproducer (src/gen/Shrink.h) and written to the corpus directory.
///
///   se2gis_fuzz --gen-seed N --cases N
///       [--timeout-ms N]        per-config budget (default 2000)
///       [--matrix small|full]   config matrix (full adds chc-only + disk)
///       [--cache-addr ADDR]     add a remote-cache cold/warm column
///                               against a running se2gis_cached
///       [--corpus DIR]          write <name>.se2 + <name>.json reproducers
///       [--no-shrink]           keep failing cases unshrunk
///       [--replay FILE]         run one DSL file through the matrix
///       [--print-source]        echo each case's source before running it
///       [--trace PATH]          Chrome trace (fuzz.case spans)
///       [--inject-bug]          test-only: flip one verdict per case to
///                               exercise classify/shrink/corpus end-to-end
///
/// Output is byte-for-byte deterministic for a fixed seed and flags: the
/// generator never reads wall clock or solver timing, and every line
/// printed is derived from (seed, case index, verdicts).
///
/// Exit code: 0 no failures (timeout-only cases are fine), 1 failures
/// found, 64 usage.
///
//===----------------------------------------------------------------------===//

#include "core/SynthesisTask.h"
#include "gen/Differential.h"
#include "gen/Generator.h"
#include "gen/Shrink.h"
#include "support/Diagnostics.h"
#include "support/Log.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace se2gis;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: se2gis_fuzz --gen-seed N --cases N\n"
               "                   [--timeout-ms N] [--matrix small|full]\n"
               "                   [--cache-addr ADDR]\n"
               "                   [--corpus DIR] [--no-shrink]\n"
               "                   [--replay FILE] [--print-source]\n"
               "                   [--trace PATH] [--inject-bug]\n");
}

/// JSON string escaping for the manifest (the strings involved are ASCII
/// verdict/label text, but be safe about quotes/backslashes).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

void writeManifest(std::ostream &OS, const std::string &Name,
                   uint64_t GenSeed, unsigned CaseIndex,
                   const CaseReport &Rep, const DiffOptions &Opts,
                   bool FullMatrix, size_t OrigBytes, size_t ShrunkBytes,
                   const ShrinkStats &SS) {
  OS << "{\n";
  OS << "  \"name\": \"" << jsonEscape(Name) << "\",\n";
  OS << "  \"gen_seed\": " << GenSeed << ",\n";
  OS << "  \"case_index\": " << CaseIndex << ",\n";
  OS << "  \"kind\": \"" << failureKindName(Rep.Kind) << "\",\n";
  OS << "  \"note\": \"" << jsonEscape(Rep.Note) << "\",\n";
  OS << "  \"timeout_ms\": " << Opts.TimeoutMs << ",\n";
  OS << "  \"matrix\": \"" << (FullMatrix ? "full" : "small") << "\",\n";
  OS << "  \"injected\": " << (Opts.InjectBug ? "true" : "false") << ",\n";
  OS << "  \"original_bytes\": " << OrigBytes << ",\n";
  OS << "  \"shrunk_bytes\": " << ShrunkBytes << ",\n";
  OS << "  \"shrink_attempts\": " << SS.Attempts << ",\n";
  OS << "  \"shrink_accepted\": " << SS.Accepted << ",\n";
  OS << "  \"results\": [";
  for (size_t I = 0; I < Rep.Results.size(); ++I) {
    const ConfigResult &R = Rep.Results[I];
    OS << (I ? ",\n              " : "\n              ");
    OS << "{\"config\": \"" << jsonEscape(R.Label) << "\", \"verdict\": \""
       << verdictName(R.V) << "\", \"source\": \""
       << (R.SourceLabel.empty() ? verdictSourceName(R.Source)
                                 : R.SourceLabel.c_str())
       << "\"}";
  }
  OS << "\n  ]\n}\n";
}

struct Totals {
  unsigned Cases = 0, Ok = 0, TimeoutOnly = 0, Failures = 0, Exhausted = 0;
  unsigned ByKind[6] = {};
};

} // namespace

int main(int argc, char **argv) {
  // Line-buffer stdout so a crash mid-case cannot swallow the lines that
  // identify the crashing case.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  uint64_t GenSeed = 0;
  bool SeedSet = false;
  unsigned Cases = 100;
  bool FullMatrix = false;
  std::string CorpusDir, ReplayFile, TracePath;
  bool NoShrink = false, PrintSource = false, InjectBug = false;
  DiffOptions Opts;

  try {
    // Environment first (SE2GIS_GEN_SEED, SE2GIS_TIMEOUT_MS), flags win.
    SolverConfig Env = SolverConfig::fromEnv(/*DefaultTimeoutMs=*/2000);
    GenSeed = Env.GenSeed;
    SeedSet = Env.GenSeed != 0;
    Opts.TimeoutMs = Env.Algo.TimeoutMs;
  } catch (const UserError &E) {
    logf(LogLevel::Error, "fuzz", "%s", E.what());
    return 64;
  }

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Value = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        logf(LogLevel::Error, "fuzz", "%s needs a value", Flag);
        usage();
        std::exit(64);
      }
      return argv[++I];
    };
    if (A == "--gen-seed") {
      GenSeed = std::strtoull(Value("--gen-seed"), nullptr, 10);
      SeedSet = true;
    } else if (A == "--cases") {
      Cases = static_cast<unsigned>(std::atoi(Value("--cases")));
    } else if (A == "--timeout-ms") {
      Opts.TimeoutMs = std::atoll(Value("--timeout-ms"));
    } else if (A == "--matrix") {
      std::string V = Value("--matrix");
      if (V == "small")
        FullMatrix = false;
      else if (V == "full")
        FullMatrix = true;
      else {
        logf(LogLevel::Error, "fuzz", "--matrix expects small|full");
        return 64;
      }
    } else if (A == "--cache-addr") {
      Opts.RemoteAddr = Value("--cache-addr");
    } else if (A == "--corpus") {
      CorpusDir = Value("--corpus");
    } else if (A == "--no-shrink") {
      NoShrink = true;
    } else if (A == "--replay") {
      ReplayFile = Value("--replay");
    } else if (A == "--print-source") {
      PrintSource = true;
    } else if (A == "--trace") {
      TracePath = Value("--trace");
    } else if (A == "--inject-bug") {
      InjectBug = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      logf(LogLevel::Error, "fuzz", "unknown flag '%s'", A.c_str());
      usage();
      return 64;
    }
  }
  Opts.InjectBug = InjectBug;

  if (!TracePath.empty())
    traceConfigure(TracePath);

  std::vector<FuzzConfigSpec> Matrix =
      defaultMatrix(FullMatrix, /*WithRemote=*/!Opts.RemoteAddr.empty());

  // Disk/remote-cache configs need a scratch directory; share the corpus
  // dir's parent when given, else a fixed path under the system temp dir.
  if (FullMatrix || !Opts.RemoteAddr.empty()) {
    Opts.CacheDirBase =
        (std::filesystem::temp_directory_path() / "se2gis_fuzz_cache")
            .string();
    std::error_code EC;
    std::filesystem::remove_all(Opts.CacheDirBase, EC);
  }

  // --- Replay mode: one file through the matrix, full report, done.
  if (!ReplayFile.empty()) {
    std::ifstream In(ReplayFile);
    if (!In) {
      logf(LogLevel::Error, "fuzz", "cannot read %s", ReplayFile.c_str());
      return 64;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    CaseReport Rep = runSourceDifferential(SS.str(), 0, Matrix, Opts);
    std::printf("replay %s: %s\n", ReplayFile.c_str(), Rep.str().c_str());
    if (!TracePath.empty())
      traceFlush();
    return isFailure(Rep.Kind) ? 1 : 0;
  }

  if (!SeedSet) {
    logf(LogLevel::Error, "fuzz",
         "--gen-seed is required (or SE2GIS_GEN_SEED)");
    usage();
    return 64;
  }

  if (!CorpusDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(CorpusDir, EC);
    if (EC) {
      logf(LogLevel::Error, "fuzz", "cannot create corpus dir %s",
           CorpusDir.c_str());
      return 64;
    }
  }

  Totals T;
  for (unsigned Case = 0; Case < Cases; ++Case) {
    ++T.Cases;
    std::optional<GenCase> C = generateCase(GenSeed, Case);
    if (!C) {
      ++T.Exhausted;
      std::printf("case %04u: generation exhausted\n", Case);
      continue;
    }
    std::string Src = caseSource(*C);
    if (PrintSource)
      std::printf("case %04u source:\n%s", Case, Src.c_str());

    CaseReport Rep = runCaseDifferential(*C, Matrix, Opts);
    ++T.ByKind[static_cast<unsigned>(Rep.Kind)];
    std::printf("case %04u: %s\n", Case, Rep.str().c_str());

    if (Rep.Kind == FailureKind::None) {
      ++T.Ok;
      continue;
    }
    if (Rep.Kind == FailureKind::TimeoutOnly) {
      ++T.TimeoutOnly;
      continue;
    }
    ++T.Failures;

    // --- Shrink to a minimal reproducer of the same failure class.
    GenCase Minimal = *C;
    ShrinkStats SS;
    CaseReport MinRep = Rep;
    if (!NoShrink) {
      FailureKind Want = Rep.Kind;
      auto StillFails = [&](const GenCase &Cand) {
        return runCaseDifferential(Cand, Matrix, Opts).Kind == Want;
      };
      Minimal = shrinkCase(*C, StillFails, /*MaxEvals=*/200, &SS);
      MinRep = runCaseDifferential(Minimal, Matrix, Opts);
      std::printf("case %04u: shrunk %zu -> %zu bytes (%u/%u accepted)\n",
                  Case, Src.size(), caseSource(Minimal).size(), SS.Accepted,
                  SS.Attempts);
    }

    if (!CorpusDir.empty()) {
      std::ostringstream NameSS;
      NameSS << "seed" << GenSeed << "_case" << Case << "_"
             << failureKindName(MinRep.Kind);
      std::string Name = NameSS.str();
      std::string MinSrc = caseSource(Minimal);
      {
        std::ofstream Out(CorpusDir + "/" + Name + ".se2");
        Out << MinSrc;
      }
      {
        std::ofstream Out(CorpusDir + "/" + Name + ".json");
        writeManifest(Out, Name, GenSeed, Case, MinRep, Opts, FullMatrix,
                      Src.size(), MinSrc.size(), SS);
      }
      std::printf("case %04u: reproducer written to %s/%s.se2\n", Case,
                  CorpusDir.c_str(), Name.c_str());
    }
  }

  std::printf("fuzz summary: %u cases, %u ok, %u timeout-only, %u failures"
              " (%u contradictions, %u evidence, %u crashes, %u round-trip)"
              ", %u exhausted\n",
              T.Cases, T.Ok, T.TimeoutOnly, T.Failures,
              T.ByKind[static_cast<unsigned>(FailureKind::Contradiction)],
              T.ByKind[static_cast<unsigned>(FailureKind::EvidenceMismatch)],
              T.ByKind[static_cast<unsigned>(FailureKind::Crash)],
              T.ByKind[static_cast<unsigned>(FailureKind::RoundTripFail)],
              T.Exhausted);

  if (!TracePath.empty())
    traceFlush();
  return T.Failures ? 1 : 0;
}
