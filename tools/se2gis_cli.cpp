//===- se2gis_cli.cpp - Command-line driver ---------------------*- C++-*-===//
///
/// \file
/// The `se2gis` command-line tool. Two faces:
///
/// **Direct mode** (no subcommand): reads a problem in the DSL — from a
/// file or the benchmark registry — and runs one algorithm on it in
/// process through the SynthesisTask API.
///
///   se2gis [options] <problem-file>
///   se2gis [options] --benchmark <name>
///     --algo se2gis|segis|segis-uc|portfolio   (default: se2gis)
///     --timeout N                              overall budget in seconds
///                                              (0 = unlimited)
///     --timeout-ms N                           the same in milliseconds
///     --jobs N                                 worker threads for sweeps /
///                                              portfolio bookkeeping
///     --seed N                                 Z3 random seed
///     --cache off|mem|disk|remote              memoization mode
///     --cache-dir DIR                          persistent store directory
///                                              (default: ./.se2gis-cache)
///     --cache-addr ADDR                        se2gis_cached address for
///                                              --cache remote (unix:/path
///                                              or tcp:host:port)
///     --log-level error|warn|info|debug        logger verbosity
///     --trace PATH                             write a Chrome trace_event
///                                              JSON file (Perfetto-viewable)
///     --print-problem                          echo the parsed components
///     --quiet                                  result line only
///
/// Exit code: 0 realizable, 1 unrealizable, 2 timeout, 3 failure, 64 usage.
///
/// **Client mode** (first argument is a subcommand): talks to a running
/// `se2gis_served` daemon over the framed JSON protocol.
///
///   se2gis submit --connect ADDR (--benchmark NAME | --source FILE)
///                 [--algo A] [--timeout-ms N] [--priority N] [--wait]
///   se2gis status --connect ADDR <job-id>
///   se2gis result --connect ADDR <job-id>
///   se2gis cancel --connect ADDR <job-id>
///   se2gis stats  --connect ADDR
///   se2gis metrics --connect ADDR
///   se2gis drain  --connect ADDR [--deadline-ms N]
///   se2gis list   [--json]
///
/// Client exit codes: 0 success, 4 typed server error (code on stderr),
/// 70 transport failure, 64 usage — except `submit --wait`, which maps the
/// final verdict onto the direct-mode codes 0/1/2/3 so scripts can compare
/// service and in-process runs 1:1. `list` is local (no daemon needed) and
/// dumps the benchmark registry; with --json one machine-readable array of
/// {"name","family","realizable"}.
///
/// Flags override the SE2GIS_* environment (read via SolverConfig::fromEnv).
///
//===----------------------------------------------------------------------===//

#include "core/SynthesisTask.h"
#include "frontend/Elaborate.h"
#include "service/Client.h"
#include "suite/Benchmarks.h"
#include "support/Diagnostics.h"
#include "support/Log.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

using namespace se2gis;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: se2gis [--algo se2gis|segis|segis-uc|chc|portfolio]\n"
      "              [--timeout N] [--timeout-ms N] [--jobs N] [--seed N]\n"
      "              [--unreal witness|chc|race] [--smt-incremental on|off]\n"
      "              [--cache off|mem|disk|remote] [--cache-dir DIR]\n"
      "              [--cache-addr ADDR]\n"
      "              [--log-level error|warn|info|debug] [--trace PATH]\n"
      "              [--print-problem] [--quiet]\n"
      "              (<problem-file> | --benchmark <name>)\n"
      "       se2gis submit --connect ADDR (--benchmark NAME | --source "
      "FILE)\n"
      "              [--algo A] [--timeout-ms N] [--priority N] [--wait]\n"
      "       se2gis status|result|cancel --connect ADDR <job-id>\n"
      "       se2gis stats --connect ADDR\n"
      "       se2gis metrics --connect ADDR\n"
      "       se2gis drain --connect ADDR [--deadline-ms N]\n"
      "       se2gis list [--json]\n");
}

int verdictExitCode(const std::string &Verdict) {
  if (Verdict == "realizable")
    return 0;
  if (Verdict == "unrealizable")
    return 1;
  if (Verdict == "timeout")
    return 2;
  return 3;
}

//===----------------------------------------------------------------------===//
// `se2gis list` — the registry dump (local, no daemon)
//===----------------------------------------------------------------------===//

int listMain(int argc, char **argv) {
  bool AsJson = false;
  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--json") {
      AsJson = true;
    } else {
      logf(LogLevel::Error, "cli", "unknown option '%s'", Arg.c_str());
      return 64;
    }
  }
  const std::vector<BenchmarkDef> &All = allBenchmarks();
  if (AsJson) {
    JsonValue Arr = JsonValue::array();
    for (const BenchmarkDef &B : All) {
      JsonValue E = JsonValue::object();
      E.set("name", JsonValue::str(B.Name));
      E.set("family", JsonValue::str(B.Category));
      E.set("realizable", JsonValue::boolean(B.ExpectRealizable));
      Arr.push(std::move(E));
    }
    std::printf("%s\n", Arr.dump().c_str());
    return 0;
  }
  for (const BenchmarkDef &B : All)
    std::printf("%-28s %-26s %s\n", B.Name.c_str(), B.Category.c_str(),
                B.ExpectRealizable ? "realizable" : "unrealizable");
  std::printf("%zu benchmarks\n", All.size());
  return 0;
}

//===----------------------------------------------------------------------===//
// Client mode — subcommands against a running daemon
//===----------------------------------------------------------------------===//

/// Prints the typed error of an `"ok": false` response and returns the
/// client-mode exit code for it.
int reportTypedError(const JsonValue &Resp) {
  std::string Code = "internal", Message;
  if (const JsonValue *E = Resp.get("error")) {
    Code = E->getString("code", Code);
    Message = E->getString("message", "");
  }
  logf(LogLevel::Error, "cli", "%s: %s", Code.c_str(), Message.c_str());
  return 4;
}

/// One request/response against \p Addr; handles transport and typed
/// errors uniformly. \returns 0 and fills \p Resp on `"ok": true`.
int callDaemon(const std::string &Addr, const JsonValue &Req,
               JsonValue &Resp) {
  std::string Error;
  auto Client = ServiceClient::connect(Addr, Error);
  if (!Client) {
    logf(LogLevel::Error, "cli", "cannot connect to %s: %s", Addr.c_str(),
         Error.c_str());
    return 70;
  }
  if (!Client->call(Req, Resp, Error)) {
    logf(LogLevel::Error, "cli", "%s", Error.c_str());
    return 70;
  }
  if (!Resp.getBool("ok", false))
    return reportTypedError(Resp);
  return 0;
}

/// Polls `status` until the job is terminal, then fetches the result.
/// Maps the verdict onto the direct-mode exit codes for script parity.
int waitForJob(const std::string &Addr, const std::string &JobId,
               bool Quiet) {
  for (;;) {
    JsonValue Req = JsonValue::object();
    Req.set("method", JsonValue::str("status"));
    Req.set("job", JsonValue::str(JobId));
    JsonValue Resp;
    if (int Rc = callDaemon(Addr, Req, Resp))
      return Rc;
    std::string State = Resp.getString("state", "");
    if (State == "done" || State == "cancelled") {
      JsonValue RReq = JsonValue::object();
      RReq.set("method", JsonValue::str("result"));
      RReq.set("job", JsonValue::str(JobId));
      JsonValue RResp;
      if (int Rc = callDaemon(Addr, RReq, RResp))
        return Rc;
      if (State == "cancelled") {
        std::printf("%s: cancelled\n", JobId.c_str());
        return 3;
      }
      std::string Verdict = RResp.getString("verdict", "failed");
      std::printf("%s: %s (%.1f ms)\n", JobId.c_str(), Verdict.c_str(),
                  RResp.getNumber("elapsed_ms", 0.0));
      if (!Quiet) {
        std::string Solution = RResp.getString("solution", "");
        std::string Detail = RResp.getString("detail", "");
        if (!Solution.empty())
          std::printf("%s", Solution.c_str());
        else if (!Detail.empty())
          std::printf("%s\n", Detail.c_str());
      }
      return verdictExitCode(Verdict);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

int clientMain(int argc, char **argv) {
  std::string Sub = argv[1];
  std::string Addr = "unix:./se2gis.sock";
  std::string Benchmark, SourcePath, Algo, JobId;
  std::int64_t TimeoutMs = -1, DeadlineMs = -1;
  int Priority = 0;
  bool Wait = false, Quiet = false;

  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--connect" && I + 1 < argc) {
      Addr = argv[++I];
    } else if (Arg == "--benchmark" && I + 1 < argc) {
      Benchmark = argv[++I];
    } else if (Arg == "--source" && I + 1 < argc) {
      SourcePath = argv[++I];
    } else if (Arg == "--algo" && I + 1 < argc) {
      Algo = argv[++I];
    } else if (Arg == "--timeout-ms" && I + 1 < argc) {
      TimeoutMs = std::atoll(argv[++I]);
    } else if (Arg == "--deadline-ms" && I + 1 < argc) {
      DeadlineMs = std::atoll(argv[++I]);
    } else if (Arg == "--priority" && I + 1 < argc) {
      Priority = std::atoi(argv[++I]);
    } else if (Arg == "--wait") {
      Wait = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      logf(LogLevel::Error, "cli", "unknown option '%s'", Arg.c_str());
      return 64;
    } else {
      JobId = Arg;
    }
  }

  JsonValue Req = JsonValue::object();
  Req.set("method", JsonValue::str(Sub));

  if (Sub == "submit") {
    if (Benchmark.empty() == SourcePath.empty()) {
      logf(LogLevel::Error, "cli",
           "submit needs exactly one of --benchmark/--source");
      return 64;
    }
    if (!Benchmark.empty()) {
      Req.set("benchmark", JsonValue::str(Benchmark));
    } else {
      std::ifstream In(SourcePath);
      if (!In) {
        logf(LogLevel::Error, "cli", "cannot open '%s'", SourcePath.c_str());
        return 64;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Req.set("source", JsonValue::str(Buf.str()));
      Req.set("label", JsonValue::str(SourcePath));
    }
    if (!Algo.empty())
      Req.set("algo", JsonValue::str(Algo));
    if (TimeoutMs >= 0)
      Req.set("timeout_ms", JsonValue::number(TimeoutMs));
    if (Priority != 0)
      Req.set("priority", JsonValue::number(static_cast<std::int64_t>(Priority)));
  } else if (Sub == "status" || Sub == "result" || Sub == "cancel") {
    if (JobId.empty()) {
      logf(LogLevel::Error, "cli", "%s needs a job id", Sub.c_str());
      return 64;
    }
    Req.set("job", JsonValue::str(JobId));
  } else if (Sub == "drain") {
    if (DeadlineMs >= 0)
      Req.set("deadline_ms", JsonValue::number(DeadlineMs));
  } else if (Sub != "stats" && Sub != "ping" && Sub != "metrics") {
    logf(LogLevel::Error, "cli", "unknown subcommand '%s'", Sub.c_str());
    usage();
    return 64;
  }

  JsonValue Resp;
  if (int Rc = callDaemon(Addr, Req, Resp))
    return Rc;

  if (Sub == "submit") {
    std::string Id = Resp.getString("job", "");
    if (Wait)
      return waitForJob(Addr, Id, Quiet);
    std::printf("%s\n", Id.c_str());
    return 0;
  }
  if (Sub == "metrics") {
    // The exposition is line-oriented text, not JSON: print the body raw so
    // `se2gis metrics | promtool check metrics` just works.
    std::printf("%s", Resp.getString("body", "").c_str());
    return 0;
  }
  std::printf("%s\n", Resp.dump().c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 1) {
    std::string First = argv[1];
    if (First == "list")
      return listMain(argc, argv);
    if (First == "submit" || First == "status" || First == "result" ||
        First == "cancel" || First == "stats" || First == "metrics" ||
        First == "drain" || First == "ping")
      return clientMain(argc, argv);
  }

  SolverConfig Config;
  try {
    Config = SolverConfig::fromEnv(/*DefaultTimeoutMs=*/60000);
  } catch (const UserError &E) {
    logf(LogLevel::Error, "cli", "%s", E.what());
    return 64;
  }
  AlgorithmKind Algo = AlgorithmKind::SE2GIS;
  bool PrintProblem = false;
  bool Quiet = false;
  std::string Path;
  std::string Benchmark;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--algo" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto K = parseAlgorithmName(Name);
      if (!K) {
        logf(LogLevel::Error, "cli", "unknown algorithm '%s'", Name.c_str());
        return 64;
      }
      Algo = *K;
    } else if (Arg == "--timeout" && I + 1 < argc) {
      // Seconds; 0 disables the deadline (Deadline::afterMs(<=0) is
      // unlimited).
      Config.Algo.TimeoutMs = std::atoll(argv[++I]) * 1000;
    } else if (Arg == "--timeout-ms" && I + 1 < argc) {
      Config.Algo.TimeoutMs = std::atoll(argv[++I]);
    } else if (Arg == "--jobs" && I + 1 < argc) {
      long V = std::atol(argv[++I]);
      Config.Jobs = V > 0 ? static_cast<unsigned>(V) : 0;
    } else if (Arg == "--seed" && I + 1 < argc) {
      long long V = std::atoll(argv[++I]);
      Config.Algo.Seed = V > 0 ? static_cast<unsigned>(V) : 0;
    } else if (Arg == "--unreal" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto Mode = parseUnrealMode(Name);
      if (!Mode) {
        logf(LogLevel::Error, "cli",
             "--unreal expects witness, chc, or race, got '%s'",
             Name.c_str());
        return 64;
      }
      Config.Algo.Unreal = *Mode;
    } else if (Arg == "--smt-incremental" && I + 1 < argc) {
      std::string Mode = argv[++I];
      if (Mode == "on")
        Config.Algo.SmtIncremental = true;
      else if (Mode == "off")
        Config.Algo.SmtIncremental = false;
      else {
        logf(LogLevel::Error, "cli",
             "--smt-incremental expects on or off, got '%s'", Mode.c_str());
        return 64;
      }
    } else if (Arg == "--cache" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto Mode = parseCacheMode(Name);
      if (!Mode) {
        logf(LogLevel::Error, "cli", "unknown cache mode '%s'", Name.c_str());
        return 64;
      }
      Config.Cache.Mode = *Mode;
    } else if (Arg == "--cache-dir" && I + 1 < argc) {
      Config.Cache.Dir = argv[++I];
    } else if (Arg == "--cache-addr" && I + 1 < argc) {
      Config.Cache.Addr = argv[++I];
    } else if (Arg == "--log-level" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto Level = parseLogLevel(Name);
      if (!Level) {
        logf(LogLevel::Error, "cli", "unknown log level '%s'", Name.c_str());
        return 64;
      }
      Config.Log.Level = *Level;
    } else if (Arg == "--trace" && I + 1 < argc) {
      Config.TracePath = argv[++I];
    } else if (Arg == "--benchmark" && I + 1 < argc) {
      Benchmark = argv[++I];
    } else if (Arg == "--print-problem") {
      PrintProblem = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      logf(LogLevel::Error, "cli", "unknown option '%s'", Arg.c_str());
      usage();
      return 64;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty() == Benchmark.empty()) {
    // Neither or both: direct mode wants exactly one problem source.
    usage();
    return 64;
  }
  if (Config.Cache.Mode == CacheMode::Disk ||
      Config.Cache.Mode == CacheMode::Remote) {
    std::string Err = validateCacheDir(Config.Cache.Dir);
    if (!Err.empty()) {
      logf(LogLevel::Error, "cli", "--cache-dir: %s", Err.c_str());
      return 64;
    }
  }
  if (Config.Cache.Mode == CacheMode::Remote && Config.Cache.Addr.empty()) {
    logf(LogLevel::Error, "cli",
         "--cache remote needs --cache-addr (or SE2GIS_CACHE_ADDR)");
    return 64;
  }

  std::shared_ptr<const Problem> P;
  std::string DisplayName;
  if (!Benchmark.empty()) {
    const BenchmarkDef *Def = findBenchmark(Benchmark);
    if (!Def) {
      logf(LogLevel::Error, "cli",
           "unknown benchmark '%s' (see `se2gis list`)", Benchmark.c_str());
      return 64;
    }
    DisplayName = Def->Name;
    try {
      P = std::make_shared<const Problem>(loadBenchmark(*Def));
    } catch (const UserError &E) {
      logf(LogLevel::Error, "cli", "%s", E.what());
      return 64;
    }
  } else {
    std::ifstream In(Path);
    if (!In) {
      logf(LogLevel::Error, "cli", "cannot open '%s'", Path.c_str());
      return 64;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    DisplayName = Path;
    try {
      P = std::make_shared<const Problem>(loadProblem(Buf.str()));
    } catch (const UserError &E) {
      logf(LogLevel::Error, "cli", "%s", E.what());
      return 64;
    }
  }

  if (PrintProblem) {
    std::printf("reference:      %s\n", P->Reference.c_str());
    std::printf("target:         %s\n", P->Target.c_str());
    std::printf("representation: %s%s\n", P->Repr.c_str(),
                P->ReprIdentity ? " (identity)" : "");
    std::printf("invariant:      %s\n",
                P->Invariant.empty() ? "(true)" : P->Invariant.c_str());
    std::printf("unknowns:      ");
    for (const UnknownSig &U : P->Unknowns)
      std::printf(" $%s/%zu", U.Name.c_str(), U.ArgTypes.size());
    std::printf("\n");
  }

  SynthesisTask Task(P, Algo);
  Outcome R = Task.run(Config);

  if (!Config.TracePath.empty())
    traceFlush();

  std::string Via;
  if (R.Ev.Source != VerdictSource::None)
    Via = " [via " + R.Ev.str() + "]";
  std::printf("%s: %s%s (%.1f ms, steps %s)\n", DisplayName.c_str(),
              verdictName(R.V), Via.c_str(), R.Stats.ElapsedMs,
              R.Stats.Steps.c_str());
  if (!Quiet) {
    std::printf("telemetry: %s\n", R.Stats.Counters.str().c_str());
    std::printf("phases: eval=%.1f ms smt=%.1f ms enum=%.1f ms "
                "induction=%.1f ms\n",
                R.Stats.Phases.getMs(Phase::Eval),
                R.Stats.Phases.getMs(Phase::Smt),
                R.Stats.Phases.getMs(Phase::Enum),
                R.Stats.Phases.getMs(Phase::Induction));
  }
  if (!Quiet) {
    if (R.V == Verdict::Realizable) {
      std::printf("%s", solutionToString(*P, R.Solution).c_str());
      if (R.Stats.SolutionProvedInductive)
        std::printf("(solution proved correct by induction)\n");
      else
        std::printf("(solution passed the bounded check)\n");
    } else if (!R.Detail.empty()) {
      std::printf("%s\n", R.Detail.c_str());
    }
    if (R.V == Verdict::Timeout && !R.Stats.LastCandidate.empty())
      std::printf("partial progress (%d refinements, %d coarsenings); "
                  "last candidate:\n%s",
                  R.Stats.Refinements, R.Stats.Coarsenings,
                  R.Stats.LastCandidate.c_str());
  }
  switch (R.V) {
  case Verdict::Realizable:
    return 0;
  case Verdict::Unrealizable:
    return 1;
  case Verdict::Timeout:
    return 2;
  case Verdict::Failed:
    return 3;
  }
  return 3;
}
