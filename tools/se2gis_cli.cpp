//===- se2gis_cli.cpp - Command-line driver ---------------------*- C++-*-===//
///
/// \file
/// The `se2gis` command-line tool: reads a problem file in the DSL and runs
/// one of the algorithms on it.
///
///   se2gis [options] <problem-file>
///     --algo se2gis|segis|segis+uc|portfolio   (default: se2gis)
///     --timeout-ms N                           (default: 60000)
///     --print-problem                          echo the parsed components
///     --quiet                                  result line only
///
/// Exit code: 0 realizable, 1 unrealizable, 2 timeout/failure, 64 usage.
///
//===----------------------------------------------------------------------===//

#include "core/Algorithms.h"
#include "core/Portfolio.h"
#include "frontend/Elaborate.h"
#include "support/Diagnostics.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace se2gis;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: se2gis [--algo se2gis|segis|segis+uc|portfolio] "
      "[--timeout-ms N] [--print-problem] [--quiet] <problem-file>\n");
}

} // namespace

int main(int argc, char **argv) {
  std::string AlgoName = "se2gis";
  std::int64_t TimeoutMs = 60000;
  bool PrintProblem = false;
  bool Quiet = false;
  std::string Path;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--algo" && I + 1 < argc) {
      AlgoName = argv[++I];
    } else if (Arg == "--timeout-ms" && I + 1 < argc) {
      TimeoutMs = std::atoll(argv[++I]);
    } else if (Arg == "--print-problem") {
      PrintProblem = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage();
      return 64;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty()) {
    usage();
    return 64;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 64;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  Problem P;
  try {
    P = loadProblem(Buf.str());
  } catch (const UserError &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 64;
  }

  if (PrintProblem) {
    std::printf("reference:      %s\n", P.Reference.c_str());
    std::printf("target:         %s\n", P.Target.c_str());
    std::printf("representation: %s%s\n", P.Repr.c_str(),
                P.ReprIdentity ? " (identity)" : "");
    std::printf("invariant:      %s\n",
                P.Invariant.empty() ? "(true)" : P.Invariant.c_str());
    std::printf("unknowns:      ");
    for (const UnknownSig &U : P.Unknowns)
      std::printf(" $%s/%zu", U.Name.c_str(), U.ArgTypes.size());
    std::printf("\n");
  }

  AlgoOptions Opts;
  Opts.TimeoutMs = TimeoutMs;

  RunResult R;
  if (AlgoName == "se2gis") {
    R = runSE2GIS(P, Opts);
  } else if (AlgoName == "segis") {
    R = runSEGIS(P, Opts, /*WithUnrealizabilityChecker=*/false);
  } else if (AlgoName == "segis+uc") {
    R = runSEGIS(P, Opts, /*WithUnrealizabilityChecker=*/true);
  } else if (AlgoName == "portfolio") {
    R = runPortfolio(P, Opts);
  } else {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n",
                 AlgoName.c_str());
    return 64;
  }

  std::printf("%s: %s (%.1f ms, steps %s)\n", Path.c_str(),
              outcomeName(R.O), R.Stats.ElapsedMs, R.Stats.Steps.c_str());
  if (!Quiet)
    std::printf("telemetry: %s\n", R.Stats.Counters.str().c_str());
  if (!Quiet) {
    if (R.O == Outcome::Realizable) {
      std::printf("%s", solutionToString(P, R.Solution).c_str());
      if (R.Stats.SolutionProvedInductive)
        std::printf("(solution proved correct by induction)\n");
      else
        std::printf("(solution passed the bounded check)\n");
    } else if (!R.Detail.empty()) {
      std::printf("%s\n", R.Detail.c_str());
    }
  }
  switch (R.O) {
  case Outcome::Realizable:
    return 0;
  case Outcome::Unrealizable:
    return 1;
  default:
    return 2;
  }
}
