//===- se2gis_cli.cpp - Command-line driver ---------------------*- C++-*-===//
///
/// \file
/// The `se2gis` command-line tool: reads a problem file in the DSL and runs
/// one of the algorithms on it through the SynthesisTask API.
///
///   se2gis [options] <problem-file>
///     --algo se2gis|segis|segis-uc|portfolio   (default: se2gis)
///     --timeout N                              overall budget in seconds
///                                              (0 = unlimited)
///     --timeout-ms N                           the same in milliseconds
///     --jobs N                                 worker threads for sweeps /
///                                              portfolio bookkeeping
///     --seed N                                 Z3 random seed
///     --cache off|mem|disk                     memoization mode
///     --cache-dir DIR                          persistent store directory
///                                              (default: ./.se2gis-cache)
///     --log-level error|warn|info|debug        logger verbosity
///     --trace PATH                             write a Chrome trace_event
///                                              JSON file (Perfetto-viewable)
///     --print-problem                          echo the parsed components
///     --quiet                                  result line only
///
/// Flags override the SE2GIS_* environment (read via SolverConfig::fromEnv).
/// Exit code: 0 realizable, 1 unrealizable, 2 timeout, 3 failure, 64 usage.
///
//===----------------------------------------------------------------------===//

#include "core/SynthesisTask.h"
#include "frontend/Elaborate.h"
#include "support/Diagnostics.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

using namespace se2gis;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: se2gis [--algo se2gis|segis|segis-uc|portfolio] [--timeout N]\n"
      "              [--timeout-ms N] [--jobs N] [--seed N]\n"
      "              [--cache off|mem|disk] [--cache-dir DIR]\n"
      "              [--log-level error|warn|info|debug] [--trace PATH]\n"
      "              [--print-problem] [--quiet] <problem-file>\n");
}

} // namespace

int main(int argc, char **argv) {
  SolverConfig Config;
  try {
    Config = SolverConfig::fromEnv(/*DefaultTimeoutMs=*/60000);
  } catch (const UserError &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 64;
  }
  AlgorithmKind Algo = AlgorithmKind::SE2GIS;
  bool PrintProblem = false;
  bool Quiet = false;
  std::string Path;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--algo" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto K = parseAlgorithmName(Name);
      if (!K) {
        std::fprintf(stderr, "error: unknown algorithm '%s'\n", Name.c_str());
        return 64;
      }
      Algo = *K;
    } else if (Arg == "--timeout" && I + 1 < argc) {
      // Seconds; 0 disables the deadline (Deadline::afterMs(<=0) is
      // unlimited).
      Config.Algo.TimeoutMs = std::atoll(argv[++I]) * 1000;
    } else if (Arg == "--timeout-ms" && I + 1 < argc) {
      Config.Algo.TimeoutMs = std::atoll(argv[++I]);
    } else if (Arg == "--jobs" && I + 1 < argc) {
      long V = std::atol(argv[++I]);
      Config.Jobs = V > 0 ? static_cast<unsigned>(V) : 0;
    } else if (Arg == "--seed" && I + 1 < argc) {
      long long V = std::atoll(argv[++I]);
      Config.Algo.Seed = V > 0 ? static_cast<unsigned>(V) : 0;
    } else if (Arg == "--cache" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto Mode = parseCacheMode(Name);
      if (!Mode) {
        std::fprintf(stderr, "error: unknown cache mode '%s'\n", Name.c_str());
        return 64;
      }
      Config.Cache.Mode = *Mode;
    } else if (Arg == "--cache-dir" && I + 1 < argc) {
      Config.Cache.Dir = argv[++I];
    } else if (Arg == "--log-level" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto Level = parseLogLevel(Name);
      if (!Level) {
        std::fprintf(stderr, "error: unknown log level '%s'\n", Name.c_str());
        return 64;
      }
      Config.Log.Level = *Level;
    } else if (Arg == "--trace" && I + 1 < argc) {
      Config.TracePath = argv[++I];
    } else if (Arg == "--print-problem") {
      PrintProblem = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage();
      return 64;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty()) {
    usage();
    return 64;
  }
  if (Config.Cache.Mode == CacheMode::Disk) {
    std::string Err = validateCacheDir(Config.Cache.Dir);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: --cache-dir: %s\n", Err.c_str());
      return 64;
    }
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 64;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  std::shared_ptr<const Problem> P;
  try {
    P = std::make_shared<const Problem>(loadProblem(Buf.str()));
  } catch (const UserError &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    return 64;
  }

  if (PrintProblem) {
    std::printf("reference:      %s\n", P->Reference.c_str());
    std::printf("target:         %s\n", P->Target.c_str());
    std::printf("representation: %s%s\n", P->Repr.c_str(),
                P->ReprIdentity ? " (identity)" : "");
    std::printf("invariant:      %s\n",
                P->Invariant.empty() ? "(true)" : P->Invariant.c_str());
    std::printf("unknowns:      ");
    for (const UnknownSig &U : P->Unknowns)
      std::printf(" $%s/%zu", U.Name.c_str(), U.ArgTypes.size());
    std::printf("\n");
  }

  SynthesisTask Task(P, Algo);
  Outcome R = Task.run(Config);

  if (!Config.TracePath.empty())
    traceFlush();

  std::printf("%s: %s (%.1f ms, steps %s)\n", Path.c_str(),
              verdictName(R.V), R.Stats.ElapsedMs, R.Stats.Steps.c_str());
  if (!Quiet) {
    std::printf("telemetry: %s\n", R.Stats.Counters.str().c_str());
    std::printf("phases: eval=%.1f ms smt=%.1f ms enum=%.1f ms "
                "induction=%.1f ms\n",
                R.Stats.Phases.getMs(Phase::Eval),
                R.Stats.Phases.getMs(Phase::Smt),
                R.Stats.Phases.getMs(Phase::Enum),
                R.Stats.Phases.getMs(Phase::Induction));
  }
  if (!Quiet) {
    if (R.V == Verdict::Realizable) {
      std::printf("%s", solutionToString(*P, R.Solution).c_str());
      if (R.Stats.SolutionProvedInductive)
        std::printf("(solution proved correct by induction)\n");
      else
        std::printf("(solution passed the bounded check)\n");
    } else if (!R.Detail.empty()) {
      std::printf("%s\n", R.Detail.c_str());
    }
    if (R.V == Verdict::Timeout && !R.Stats.LastCandidate.empty())
      std::printf("partial progress (%d refinements, %d coarsenings); "
                  "last candidate:\n%s",
                  R.Stats.Refinements, R.Stats.Coarsenings,
                  R.Stats.LastCandidate.c_str());
  }
  switch (R.V) {
  case Verdict::Realizable:
    return 0;
  case Verdict::Unrealizable:
    return 1;
  case Verdict::Timeout:
    return 2;
  case Verdict::Failed:
    return 3;
  }
  return 3;
}
