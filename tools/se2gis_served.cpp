//===- se2gis_served.cpp - Synthesis service daemon -------------*- C++-*-===//
///
/// \file
/// The `se2gis_served` daemon: a long-running multi-client synthesis
/// service (src/service/) accepting jobs over a Unix-domain or TCP socket.
///
///   se2gis_served [options]
///     --listen ADDR          unix:<path> or tcp:<host>:<port>
///                            (default: unix:./se2gis.sock; tcp port 0
///                            binds an ephemeral port, printed on startup)
///     --workers N            worker threads (0 = auto: max(1, hw/2))
///     --max-queue N          admission bound on queued jobs (default 64)
///     --timeout-ms N         default per-job budget (default 5000)
///     --drain-timeout-ms N   in-flight budget during drain (default 10000)
///     --cache off|mem|disk|remote  memoization mode shared by all workers
///     --cache-dir DIR        persistent store directory
///     --cache-addr ADDR      se2gis_cached address for --cache remote
///     --log-level error|warn|info|debug
///     --trace PATH           Chrome trace_event output
///     --metrics-addr ADDR    plain-HTTP Prometheus listener (unix:/tcp:)
///     --flight-dir DIR       flight-recorder dump directory
///
/// Flags override the SE2GIS_* environment (read via SolverConfig::fromEnv).
/// SIGINT/SIGTERM trigger a graceful drain: stop admitting, finish or
/// cancel in-flight work under the drain deadline, flush (fsync) the
/// persistent cache, exit 0.
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "support/Diagnostics.h"
#include "support/Log.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace se2gis;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: se2gis_served [--listen unix:<path>|tcp:<host>:<port>]\n"
      "                     [--workers N] [--max-queue N] [--timeout-ms N]\n"
      "                     [--drain-timeout-ms N] [--unreal witness|chc|race]\n"
      "                     [--smt-incremental on|off]\n"
      "                     [--cache off|mem|disk|remote]\n"
      "                     [--cache-dir DIR] [--cache-addr ADDR]\n"
      "                     [--log-level error|warn|info|debug]\n"
      "                     [--trace PATH]\n"
      "                     [--metrics-addr unix:<path>|tcp:<host>:<port>]\n"
      "                     [--flight-dir DIR]\n");
}

/// The signal handler may only touch async-signal-safe state; the server
/// exposes requestDrainAsync (a single pipe write) for exactly this.
Server *ActiveServer = nullptr;

void onSignal(int) {
  if (ActiveServer)
    ActiveServer->requestDrainAsync();
}

} // namespace

int main(int argc, char **argv) {
  ServiceConfig Config;
  try {
    Config.Base = SolverConfig::fromEnv(/*DefaultTimeoutMs=*/5000);
  } catch (const UserError &E) {
    logf(LogLevel::Error, "served", "%s", E.what());
    return 64;
  }

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--listen" && I + 1 < argc) {
      Config.Listen = argv[++I];
    } else if (Arg == "--workers" && I + 1 < argc) {
      long V = std::atol(argv[++I]);
      Config.Workers = V > 0 ? static_cast<unsigned>(V) : 0;
    } else if (Arg == "--max-queue" && I + 1 < argc) {
      long V = std::atol(argv[++I]);
      if (V < 1) {
        logf(LogLevel::Error, "served", "--max-queue must be at least 1");
        return 64;
      }
      Config.MaxQueue = static_cast<std::size_t>(V);
    } else if (Arg == "--timeout-ms" && I + 1 < argc) {
      Config.DefaultTimeoutMs = std::atoll(argv[++I]);
    } else if (Arg == "--drain-timeout-ms" && I + 1 < argc) {
      Config.DrainTimeoutMs = std::atoll(argv[++I]);
    } else if (Arg == "--unreal" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto Mode = parseUnrealMode(Name);
      if (!Mode) {
        logf(LogLevel::Error, "served",
             "--unreal expects witness, chc, or race, got '%s'", Name.c_str());
        return 64;
      }
      Config.Base.Algo.Unreal = *Mode;
    } else if (Arg == "--smt-incremental" && I + 1 < argc) {
      std::string Mode = argv[++I];
      if (Mode == "on")
        Config.Base.Algo.SmtIncremental = true;
      else if (Mode == "off")
        Config.Base.Algo.SmtIncremental = false;
      else {
        logf(LogLevel::Error, "served",
             "--smt-incremental expects on or off, got '%s'", Mode.c_str());
        return 64;
      }
    } else if (Arg == "--cache" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto Mode = parseCacheMode(Name);
      if (!Mode) {
        logf(LogLevel::Error, "served", "unknown cache mode '%s'", Name.c_str());
        return 64;
      }
      Config.Base.Cache.Mode = *Mode;
    } else if (Arg == "--cache-dir" && I + 1 < argc) {
      Config.Base.Cache.Dir = argv[++I];
    } else if (Arg == "--cache-addr" && I + 1 < argc) {
      Config.Base.Cache.Addr = argv[++I];
    } else if (Arg == "--log-level" && I + 1 < argc) {
      std::string Name = argv[++I];
      auto Level = parseLogLevel(Name);
      if (!Level) {
        logf(LogLevel::Error, "served", "unknown log level '%s'", Name.c_str());
        return 64;
      }
      Config.Base.Log.Level = *Level;
    } else if (Arg == "--trace" && I + 1 < argc) {
      Config.Base.TracePath = argv[++I];
    } else if (Arg == "--metrics-addr" && I + 1 < argc) {
      Config.MetricsAddr = argv[++I];
    } else if (Arg == "--flight-dir" && I + 1 < argc) {
      Config.FlightDir = argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      logf(LogLevel::Error, "served", "unknown option '%s'", Arg.c_str());
      usage();
      return 64;
    }
  }

  if (Config.Base.Cache.Mode == CacheMode::Remote &&
      Config.Base.Cache.Addr.empty()) {
    logf(LogLevel::Error, "served",
         "--cache remote needs --cache-addr (or SE2GIS_CACHE_ADDR)");
    return 64;
  }

  const bool HasMetrics = !Config.MetricsAddr.empty();
  Server S(std::move(Config));
  std::string Error;
  if (!S.start(Error)) {
    logf(LogLevel::Error, "served", "%s", Error.c_str());
    return 64;
  }

  ActiveServer = &S;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::printf("se2gis_served: listening on %s (%u workers)\n",
              S.addr().str().c_str(), S.workers());
  if (HasMetrics)
    std::printf("se2gis_served: metrics on %s\n",
                S.metricsAddr().str().c_str());
  std::fflush(stdout);

  S.run(); // blocks until a drain (protocol or signal) completes

  ActiveServer = nullptr;
  std::printf("se2gis_served: drained, exiting\n");
  return 0;
}
