#!/usr/bin/env bash
# bench_record.sh — record a committed benchmark baseline.
#
# Runs the full 141-benchmark suite through bench_fig4_quantile with the
# perf-counter JSON summary enabled, then wraps that summary together with
# the run's provenance (git revision, date, jobs, per-pair budget, the
# incremental-SMT mode, and the outcome table) into BENCH_<label>.json at
# the repository root, ready to commit. Two labels make a comparison pair
# recorded on the same machine and configuration:
#
#   SE2GIS_SMT_INCREMENTAL=off scripts/bench_record.sh baseline
#   SE2GIS_SMT_INCREMENTAL=on  scripts/bench_record.sh incremental_smt
#
# The outcome table is embedded verbatim so a reviewer can diff the two
# files and confirm the verdicts are identical before comparing quantiles.
#
# Usage: scripts/bench_record.sh [--force] <label> [build-dir]
#   --force    overwrite an existing BENCH_<label>.json (refused otherwise:
#              committed baselines are provenance records, and silently
#              replacing one invalidates every comparison made against it)
#   label      suffix for BENCH_<label>.json (e.g. baseline)
#   build-dir  default: build
# Env:
#   SE2GIS_TIMEOUT_MS        per-(benchmark, algorithm) budget (default 5000)
#   SE2GIS_JOBS              sweep workers (default nproc)
#   SE2GIS_SMT_INCREMENTAL   on|off (default on; recorded in the metadata)
set -euo pipefail

FORCE=0
if [ "${1:-}" = "--force" ]; then
  FORCE=1
  shift
fi
if [ $# -lt 1 ]; then
  echo "usage: scripts/bench_record.sh [--force] <label> [build-dir]" >&2
  exit 64
fi
LABEL=$1
BUILD_DIR=${2:-build}
DRIVER="$BUILD_DIR/bench/bench_fig4_quantile"
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
OUT="$REPO_ROOT/BENCH_${LABEL}.json"

if [ -e "$OUT" ] && [ "$FORCE" -ne 1 ]; then
  echo "error: $OUT already exists; pass --force to overwrite the recorded baseline" >&2
  exit 1
fi

if [ ! -x "$DRIVER" ]; then
  echo "error: $DRIVER not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

JOBS=${SE2GIS_JOBS:-$(nproc)}
TIMEOUT_MS=${SE2GIS_TIMEOUT_MS:-5000}
MODE=${SE2GIS_SMT_INCREMENTAL:-on}
PERF_JSON=$(mktemp)
STDOUT=$(mktemp)
trap 'rm -f "$PERF_JSON" "$STDOUT" "$STDOUT.log"' EXIT

echo "[record] label=$LABEL jobs=$JOBS timeout_ms=$TIMEOUT_MS smt_incremental=$MODE"
T0=$(date +%s.%N)
SE2GIS_JOBS=$JOBS SE2GIS_TIMEOUT_MS=$TIMEOUT_MS \
  SE2GIS_SMT_INCREMENTAL=$MODE SE2GIS_PERF_JSON="$PERF_JSON" \
  "$DRIVER" >"$STDOUT" 2>"$STDOUT.log"
T1=$(date +%s.%N)
WALL=$(echo "$T1 $T0" | awk '{printf "%.1f", $1-$2}')

GIT_REV=$(git -C "$REPO_ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)

python3 - "$PERF_JSON" "$STDOUT" "$OUT" <<PY
import json, sys
with open(sys.argv[1]) as f:
    perf = json.load(f)
with open(sys.argv[2]) as f:
    outcomes = [l.rstrip() for l in f if l.strip()]
doc = {
    "label": "$LABEL",
    "git_rev": "$GIT_REV",
    "date": "$DATE",
    "jobs": $JOBS,
    "timeout_ms": $TIMEOUT_MS,
    "smt_incremental": "$MODE",
    "wall_clock_s": $WALL,
    "perf": perf,
    "outcomes": outcomes,
}
with open(sys.argv[3], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PY

echo "[record] suite wall clock ${WALL}s"
for KEY in smt_check_p50_ms smt_check_p90_ms smt_check_p99_ms \
           smt_translate_p50_ms smt_session_reuse smt_session_fresh; do
  VAL=$(sed -n "s/.*\"$KEY\":\([0-9.][0-9.]*\).*/\1/p" "$PERF_JSON" | head -n1)
  echo "[record]   $KEY=${VAL:-missing}"
done
echo "[record] wrote $OUT"
