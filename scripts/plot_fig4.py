#!/usr/bin/env python3
"""ASCII rendering of Figure 4 (quantile plot) from bench output.

Usage: scripts/plot_fig4.py [bench_output.txt]

Reads the CSV block emitted by bench_fig4_quantile ("rank,se2gis_ms,...")
and draws the paper's quantile plot — number of benchmarks solved (x)
against the time needed to solve the n-th fastest benchmark (y, log scale)
— as a terminal chart. No third-party dependencies.
"""

import math
import sys


def read_series(path):
    series = {"se2gis": [], "segis_uc": [], "segis": []}
    in_csv = False
    for line in open(path, encoding="utf-8"):
        line = line.strip()
        if line.startswith("rank,se2gis_ms"):
            in_csv = True
            continue
        if in_csv:
            parts = line.split(",")
            if len(parts) != 4 or not parts[0].isdigit():
                in_csv = False
                continue
            for key, cell in zip(("se2gis", "segis_uc", "segis"), parts[1:]):
                if cell:
                    series[key].append(float(cell))
    return series


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    series = read_series(path)
    if not any(series.values()):
        sys.exit(f"no quantile CSV found in {path}; run bench_fig4_quantile")

    width, height = 70, 20
    marks = {"se2gis": "S", "segis_uc": "U", "segis": "G"}
    max_n = max(len(s) for s in series.values())
    all_times = [t for s in series.values() for t in s]
    lo = math.log10(max(min(all_times), 0.1))
    hi = math.log10(max(all_times))
    grid = [[" "] * width for _ in range(height)]

    for key, times in series.items():
        for rank, t in enumerate(times, 1):
            x = int((rank - 1) / max(max_n - 1, 1) * (width - 1))
            yf = (math.log10(max(t, 0.1)) - lo) / max(hi - lo, 1e-9)
            y = height - 1 - int(yf * (height - 1))
            grid[y][x] = marks[key]

    print(f"Figure 4 — solved benchmarks vs solve time (log ms), from {path}")
    print(f"  S = SE2GIS ({len(series['se2gis'])} solved)   "
          f"U = SEGIS+UC ({len(series['segis_uc'])})   "
          f"G = SEGIS ({len(series['segis'])})")
    top = f"{10 ** hi:.0f}ms"
    bottom = f"{10 ** lo:.0f}ms"
    for i, row in enumerate(grid):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        print(f"{label:>9} |" + "".join(row))
    print(" " * 10 + "+" + "-" * width)
    print(" " * 11 + f"1{'benchmarks solved':^{width - 8}}{max_n}")


if __name__ == "__main__":
    main()
