#!/usr/bin/env bash
# stress_service.sh — multi-client stress of the synthesis service.
#
# Boots a se2gis_served daemon on a Unix socket with a warm shared disk
# cache, then drives it with N concurrent clients submitting a mix of
# realizable, unrealizable, and deliberately-timing-out jobs. Asserts:
#
#   1. Verdict parity: every service verdict (submit --wait exit code)
#      matches the in-process run of the same benchmark/budget.
#   2. Admission control: a second, deliberately tiny daemon (1 worker,
#      queue bound 1) answers a submit flood with typed `overloaded`
#      rejections — clients are refused, never blocked or dropped.
#   3. Warm shared cache: after the stress mix, the daemon's stats report
#      a nonzero SMT-cache hit count (clients repeat problems, so the
#      process-wide cache must pay off across connections).
#   4. Metrics exposition: a plain-HTTP scrape of the daemon's
#      --metrics-addr listener returns Prometheus text whose job counters
#      (submitted, done-by-verdict, cache hits) agree with `stats`, and
#      the frame-protocol `metrics` method serves the same families.
#   5. Flight dumps: every deliberately-timed-out job leaves a
#      Perfetto-loadable flight-<jobid>.json under --flight-dir.
#   6. Graceful drain: the daemon exits 0 by itself after `drain`, with
#      the persistent store intact on disk.
#
# Usage: scripts/stress_service.sh [build-dir] [clients] [jobs-per-client]
#   build-dir        default: build
#   clients          default: 8  (the acceptance floor)
#   jobs-per-client  default: 3
set -euo pipefail

BUILD_DIR=${1:-build}
CLIENTS=${2:-8}
JOBS_PER=${3:-3}
OUT_DIR=${STRESS_OUT_DIR:-$BUILD_DIR}
CLI="$BUILD_DIR/tools/se2gis"
DAEMON="$BUILD_DIR/tools/se2gis_served"
SOCK="$OUT_DIR/stress.sock"
CACHE="$OUT_DIR/stress-cache"
WORK="$OUT_DIR/stress-work"

if [ ! -x "$CLI" ] || [ ! -x "$DAEMON" ]; then
  echo "error: build $BUILD_DIR first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi
rm -rf "$CACHE" "$WORK" "$SOCK"
mkdir -p "$WORK"

DAEMON_PID=
TINY_PID=
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  [ -n "$TINY_PID" ] && kill "$TINY_PID" 2>/dev/null || true
}
trap cleanup EXIT

wait_ping() { # wait_ping <addr>
  for _ in $(seq 1 50); do
    if "$CLI" ping --connect "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

# The job mix: (benchmark, budget-ms). The 1 ms budget must produce a
# timeout verdict; the others resolve well inside their budget.
MIX_BENCH=(list/sum unreal/sum list/sum)
MIX_BUDGET=(20000 20000 1)

# Parity baseline: the in-process exit code of each mix entry (0
# realizable, 1 unrealizable, 2 timeout).
echo "[stress] computing in-process parity baselines..."
BASELINE=()
for K in 0 1 2; do
  RC=0
  "$CLI" --benchmark "${MIX_BENCH[$K]}" --timeout-ms "${MIX_BUDGET[$K]}" \
    --quiet >/dev/null 2>&1 || RC=$?
  BASELINE[$K]=$RC
  echo "[stress]   ${MIX_BENCH[$K]} @${MIX_BUDGET[$K]}ms -> exit $RC"
done

echo "[stress] starting daemon ($CLIENTS clients x $JOBS_PER jobs)..."
"$DAEMON" --listen "unix:$SOCK" --workers 2 --max-queue 64 \
  --cache disk --cache-dir "$CACHE" \
  --metrics-addr tcp:127.0.0.1:0 --flight-dir "$WORK" \
  >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
wait_ping "unix:$SOCK" || { echo "[stress] FAIL: daemon never came up" >&2; exit 1; }

# --- Concurrent clients -----------------------------------------------------
client() { # client <index>
  local I=$1 RC K
  : >"$WORK/client$I.rc"
  for ((J = 0; J < JOBS_PER; ++J)); do
    K=$(((I + J) % 3)) # stagger the mix across clients
    RC=0
    "$CLI" submit --connect "unix:$SOCK" --benchmark "${MIX_BENCH[$K]}" \
      --timeout-ms "${MIX_BUDGET[$K]}" --wait --quiet \
      >>"$WORK/client$I.out" 2>&1 || RC=$?
    echo "$K $RC" >>"$WORK/client$I.rc"
  done
}

CLIENT_PIDS=()
for ((I = 0; I < CLIENTS; ++I)); do
  client "$I" &
  CLIENT_PIDS+=($!)
done
# Wait on the client pids explicitly: a bare `wait` would also block on the
# daemon, which stays up until we drain it.
for P in "${CLIENT_PIDS[@]}"; do wait "$P"; done

MISMATCH=0
TOTAL=0
for ((I = 0; I < CLIENTS; ++I)); do
  while read -r K RC; do
    TOTAL=$((TOTAL + 1))
    if [ "$RC" != "${BASELINE[$K]}" ]; then
      echo "[stress] FAIL: client $I got exit $RC for ${MIX_BENCH[$K]}" \
           "@${MIX_BUDGET[$K]}ms (in-process: ${BASELINE[$K]})" >&2
      MISMATCH=$((MISMATCH + 1))
    fi
  done <"$WORK/client$I.rc"
done
EXPECTED=$((CLIENTS * JOBS_PER))
if [ "$MISMATCH" -ne 0 ] || [ "$TOTAL" -ne "$EXPECTED" ]; then
  echo "[stress] FAIL: $MISMATCH verdict mismatches, $TOTAL/$EXPECTED jobs reported" >&2
  exit 1
fi
echo "[stress] verdict parity: $TOTAL/$EXPECTED jobs match the in-process runs"

# --- Warm shared cache ------------------------------------------------------
STATS=$("$CLI" stats --connect "unix:$SOCK")
SMT_HITS=$(printf '%s' "$STATS" | sed -n 's/.*"smt_hits":\([0-9][0-9]*\).*/\1/p')
if [ -z "$SMT_HITS" ] || [ "$SMT_HITS" -eq 0 ]; then
  echo "[stress] FAIL: no SMT-cache hits across repeated submissions" >&2
  echo "$STATS" >&2
  exit 1
fi
echo "[stress] warm cache: smt_hits=$SMT_HITS across $TOTAL jobs"

# --- Metrics exposition ------------------------------------------------------
# The daemon printed its bound (ephemeral) metrics port on startup.
METRICS_HP=$(sed -n 's/^se2gis_served: metrics on tcp:\(.*\)$/\1/p' "$WORK/daemon.log")
if [ -z "$METRICS_HP" ]; then
  echo "[stress] FAIL: daemon never reported a metrics address" >&2
  exit 1
fi
scrape() { # scrape <host:port> <outfile>
  if command -v curl >/dev/null 2>&1; then
    curl -sf "http://$1/metrics" -o "$2"
  else
    python3 -c 'import sys, urllib.request
open(sys.argv[2], "wb").write(
    urllib.request.urlopen("http://%s/metrics" % sys.argv[1], timeout=10).read())' \
      "$1" "$2"
  fi
}
scrape "$METRICS_HP" "$WORK/metrics.txt" \
  || { echo "[stress] FAIL: HTTP scrape of $METRICS_HP failed" >&2; exit 1; }

SUBMITTED_STATS=$(printf '%s' "$STATS" | sed -n 's/.*"submitted":\([0-9][0-9]*\).*/\1/p')
SUBMITTED_METRIC=$(awk '$1 == "se2gis_jobs_submitted_total" {print int($2)}' "$WORK/metrics.txt")
if [ "$SUBMITTED_METRIC" != "$SUBMITTED_STATS" ]; then
  echo "[stress] FAIL: se2gis_jobs_submitted_total=$SUBMITTED_METRIC but stats says $SUBMITTED_STATS" >&2
  exit 1
fi
TIMEOUT_DONE=$(sed -n 's/^se2gis_jobs_done_total{verdict="timeout"} \([0-9][0-9]*\)$/\1/p' "$WORK/metrics.txt")
if [ -z "$TIMEOUT_DONE" ] || [ "$TIMEOUT_DONE" -eq 0 ]; then
  echo "[stress] FAIL: no timeout verdicts counted in se2gis_jobs_done_total" >&2
  exit 1
fi
SMT_HITS_METRIC=$(awk '$1 == "se2gis_cache_smt_hits_total" {print int($2)}' "$WORK/metrics.txt")
if [ -z "$SMT_HITS_METRIC" ] || [ "$SMT_HITS_METRIC" -lt "$SMT_HITS" ]; then
  echo "[stress] FAIL: se2gis_cache_smt_hits_total=$SMT_HITS_METRIC < stats smt_hits=$SMT_HITS" >&2
  exit 1
fi
if ! grep -q '^# TYPE se2gis_queue_depth gauge$' "$WORK/metrics.txt" \
   || ! grep -q '^# TYPE se2gis_job_latency_seconds histogram$' "$WORK/metrics.txt"; then
  echo "[stress] FAIL: scrape is missing queue-depth/latency families" >&2
  exit 1
fi
# The frame-protocol `metrics` method serves the same exposition.
"$CLI" metrics --connect "unix:$SOCK" >"$WORK/metrics-frame.txt"
if ! grep -q '^se2gis_jobs_submitted_total ' "$WORK/metrics-frame.txt"; then
  echo "[stress] FAIL: frame-protocol metrics method returned no exposition" >&2
  exit 1
fi
echo "[stress] metrics: submitted=$SUBMITTED_METRIC timeouts=$TIMEOUT_DONE smt_hits=$SMT_HITS_METRIC (HTTP + frame scrapes agree with stats)"

# --- Flight dumps for timed-out jobs ----------------------------------------
DUMPS=$(ls "$WORK"/flight-j*.json 2>/dev/null | wc -l)
if [ "$DUMPS" -eq 0 ]; then
  echo "[stress] FAIL: timed-out jobs left no flight dumps under --flight-dir" >&2
  exit 1
fi
for F in "$WORK"/flight-j*.json; do
  python3 -c 'import json, sys
d = json.load(open(sys.argv[1]))
assert isinstance(d.get("traceEvents"), list) and d["traceEvents"], "empty dump"' "$F" \
    || { echo "[stress] FAIL: $F is not a loadable trace dump" >&2; exit 1; }
done
echo "[stress] flight recorder: $DUMPS timed-out job dump(s), all Perfetto-loadable"

# --- Typed rejection at queue capacity -------------------------------------
TINY_SOCK="$OUT_DIR/stress-tiny.sock"
rm -f "$TINY_SOCK"
"$DAEMON" --listen "unix:$TINY_SOCK" --workers 1 --max-queue 1 \
  >"$WORK/tiny.log" 2>&1 &
TINY_PID=$!
wait_ping "unix:$TINY_SOCK" || { echo "[stress] FAIL: tiny daemon never came up" >&2; exit 1; }

REJECTED=0
for _ in $(seq 1 10); do
  RC=0
  "$CLI" submit --connect "unix:$TINY_SOCK" --benchmark list/sum \
    --timeout-ms 20000 >/dev/null 2>"$WORK/reject.err" || RC=$?
  if [ "$RC" -eq 4 ] && grep -q overloaded "$WORK/reject.err"; then
    REJECTED=$((REJECTED + 1))
  fi
done
if [ "$REJECTED" -eq 0 ]; then
  echo "[stress] FAIL: flooding a 1-worker/1-slot daemon produced no typed rejection" >&2
  exit 1
fi
echo "[stress] admission control: $REJECTED/10 floods rejected with typed 'overloaded'"
"$CLI" drain --connect "unix:$TINY_SOCK" --deadline-ms 30000 >/dev/null
wait "$TINY_PID" || { echo "[stress] FAIL: tiny daemon exited nonzero" >&2; exit 1; }
TINY_PID=

# --- Graceful drain ---------------------------------------------------------
"$CLI" drain --connect "unix:$SOCK" >/dev/null
DRAIN_EXIT=0
wait "$DAEMON_PID" || DRAIN_EXIT=$?
DAEMON_PID=
if [ "$DRAIN_EXIT" -ne 0 ]; then
  echo "[stress] FAIL: daemon exited $DRAIN_EXIT after drain (want 0)" >&2
  exit 1
fi
if [ ! -s "$CACHE/store.meta" ] || [ ! -s "$CACHE/smt.jsonl" ]; then
  echo "[stress] FAIL: persistent store missing or empty after drain" >&2
  exit 1
fi
echo "[stress] drain clean (exit 0); store intact: $(ls "$CACHE" | tr '\n' ' ')"
echo "[stress] PASS"
