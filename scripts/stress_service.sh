#!/usr/bin/env bash
# stress_service.sh — multi-client stress of the synthesis service.
#
# Boots a se2gis_served daemon on a Unix socket with a warm shared disk
# cache, then drives it with N concurrent clients submitting a mix of
# realizable, unrealizable, and deliberately-timing-out jobs. Asserts:
#
#   1. Verdict parity: every service verdict (submit --wait exit code)
#      matches the in-process run of the same benchmark/budget.
#   2. Admission control: a second, deliberately tiny daemon (1 worker,
#      queue bound 1) answers a submit flood with typed `overloaded`
#      rejections — clients are refused, never blocked or dropped.
#   3. Warm shared cache: after the stress mix, the daemon's stats report
#      a nonzero SMT-cache hit count (clients repeat problems, so the
#      process-wide cache must pay off across connections).
#   4. Metrics exposition: a plain-HTTP scrape of the daemon's
#      --metrics-addr listener returns Prometheus text whose job counters
#      (submitted, done-by-verdict, cache hits) agree with `stats`, and
#      the frame-protocol `metrics` method serves the same families.
#   5. Flight dumps: every deliberately-timed-out job leaves a
#      Perfetto-loadable flight-<jobid>.json under --flight-dir.
#   6. Graceful drain: the daemon exits 0 by itself after `drain`, with
#      the persistent store intact on disk.
#   7. Shared cache tier: a se2gis_cached daemon warms a two-node fleet —
#      node A's solves populate the daemon, node B's first solves of the
#      same benchmarks report remote-cache hits with verdict parity
#      against the direct CLI; kill -9 of the daemon mid-run degrades
#      node B to local-only with zero failed or changed verdicts; a few
#      se2gis_fuzz --gen-seed cases run the remote matrix column; and the
#      cached daemon restarted on the same store directory reports the
#      warm entries before a clean client-driven drain.
#
# Usage: scripts/stress_service.sh [build-dir] [clients] [jobs-per-client]
#   build-dir        default: build
#   clients          default: 8  (the acceptance floor)
#   jobs-per-client  default: 3
set -euo pipefail

BUILD_DIR=${1:-build}
CLIENTS=${2:-8}
JOBS_PER=${3:-3}
OUT_DIR=${STRESS_OUT_DIR:-$BUILD_DIR}
CLI="$BUILD_DIR/tools/se2gis"
DAEMON="$BUILD_DIR/tools/se2gis_served"
CACHED="$BUILD_DIR/tools/se2gis_cached"
FUZZ="$BUILD_DIR/tools/se2gis_fuzz"
SOCK="$OUT_DIR/stress.sock"
CACHE="$OUT_DIR/stress-cache"
WORK="$OUT_DIR/stress-work"

if [ ! -x "$CLI" ] || [ ! -x "$DAEMON" ] || [ ! -x "$CACHED" ]; then
  echo "error: build $BUILD_DIR first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi
rm -rf "$CACHE" "$WORK" "$SOCK"
mkdir -p "$WORK"

DAEMON_PID=
TINY_PID=
CACHED_PID=
NODE_A_PID=
NODE_B_PID=
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  [ -n "$TINY_PID" ] && kill "$TINY_PID" 2>/dev/null || true
  [ -n "$CACHED_PID" ] && kill "$CACHED_PID" 2>/dev/null || true
  [ -n "$NODE_A_PID" ] && kill "$NODE_A_PID" 2>/dev/null || true
  [ -n "$NODE_B_PID" ] && kill "$NODE_B_PID" 2>/dev/null || true
}
trap cleanup EXIT

wait_ping() { # wait_ping <addr>
  for _ in $(seq 1 50); do
    if "$CLI" ping --connect "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

# The job mix: (benchmark, budget-ms). The 1 ms budget must produce a
# timeout verdict; the others resolve well inside their budget.
MIX_BENCH=(list/sum unreal/sum list/sum)
MIX_BUDGET=(20000 20000 1)

# Parity baseline: the in-process exit code of each mix entry (0
# realizable, 1 unrealizable, 2 timeout).
echo "[stress] computing in-process parity baselines..."
BASELINE=()
for K in 0 1 2; do
  RC=0
  "$CLI" --benchmark "${MIX_BENCH[$K]}" --timeout-ms "${MIX_BUDGET[$K]}" \
    --quiet >/dev/null 2>&1 || RC=$?
  BASELINE[$K]=$RC
  echo "[stress]   ${MIX_BENCH[$K]} @${MIX_BUDGET[$K]}ms -> exit $RC"
done

echo "[stress] starting daemon ($CLIENTS clients x $JOBS_PER jobs)..."
"$DAEMON" --listen "unix:$SOCK" --workers 2 --max-queue 64 \
  --cache disk --cache-dir "$CACHE" \
  --metrics-addr tcp:127.0.0.1:0 --flight-dir "$WORK" \
  >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
wait_ping "unix:$SOCK" || { echo "[stress] FAIL: daemon never came up" >&2; exit 1; }

# --- Concurrent clients -----------------------------------------------------
client() { # client <index>
  local I=$1 RC K
  : >"$WORK/client$I.rc"
  for ((J = 0; J < JOBS_PER; ++J)); do
    K=$(((I + J) % 3)) # stagger the mix across clients
    RC=0
    "$CLI" submit --connect "unix:$SOCK" --benchmark "${MIX_BENCH[$K]}" \
      --timeout-ms "${MIX_BUDGET[$K]}" --wait --quiet \
      >>"$WORK/client$I.out" 2>&1 || RC=$?
    echo "$K $RC" >>"$WORK/client$I.rc"
  done
}

CLIENT_PIDS=()
for ((I = 0; I < CLIENTS; ++I)); do
  client "$I" &
  CLIENT_PIDS+=($!)
done
# Wait on the client pids explicitly: a bare `wait` would also block on the
# daemon, which stays up until we drain it.
for P in "${CLIENT_PIDS[@]}"; do wait "$P"; done

MISMATCH=0
TOTAL=0
for ((I = 0; I < CLIENTS; ++I)); do
  while read -r K RC; do
    TOTAL=$((TOTAL + 1))
    if [ "$RC" != "${BASELINE[$K]}" ]; then
      echo "[stress] FAIL: client $I got exit $RC for ${MIX_BENCH[$K]}" \
           "@${MIX_BUDGET[$K]}ms (in-process: ${BASELINE[$K]})" >&2
      MISMATCH=$((MISMATCH + 1))
    fi
  done <"$WORK/client$I.rc"
done
EXPECTED=$((CLIENTS * JOBS_PER))
if [ "$MISMATCH" -ne 0 ] || [ "$TOTAL" -ne "$EXPECTED" ]; then
  echo "[stress] FAIL: $MISMATCH verdict mismatches, $TOTAL/$EXPECTED jobs reported" >&2
  exit 1
fi
echo "[stress] verdict parity: $TOTAL/$EXPECTED jobs match the in-process runs"

# --- Warm shared cache ------------------------------------------------------
STATS=$("$CLI" stats --connect "unix:$SOCK")
SMT_HITS=$(printf '%s' "$STATS" | sed -n 's/.*"smt_hits":\([0-9][0-9]*\).*/\1/p')
if [ -z "$SMT_HITS" ] || [ "$SMT_HITS" -eq 0 ]; then
  echo "[stress] FAIL: no SMT-cache hits across repeated submissions" >&2
  echo "$STATS" >&2
  exit 1
fi
echo "[stress] warm cache: smt_hits=$SMT_HITS across $TOTAL jobs"

# --- Metrics exposition ------------------------------------------------------
# The daemon printed its bound (ephemeral) metrics port on startup.
METRICS_HP=$(sed -n 's/^se2gis_served: metrics on tcp:\(.*\)$/\1/p' "$WORK/daemon.log")
if [ -z "$METRICS_HP" ]; then
  echo "[stress] FAIL: daemon never reported a metrics address" >&2
  exit 1
fi
scrape() { # scrape <host:port> <outfile>
  if command -v curl >/dev/null 2>&1; then
    curl -sf "http://$1/metrics" -o "$2"
  else
    python3 -c 'import sys, urllib.request
open(sys.argv[2], "wb").write(
    urllib.request.urlopen("http://%s/metrics" % sys.argv[1], timeout=10).read())' \
      "$1" "$2"
  fi
}
scrape "$METRICS_HP" "$WORK/metrics.txt" \
  || { echo "[stress] FAIL: HTTP scrape of $METRICS_HP failed" >&2; exit 1; }

SUBMITTED_STATS=$(printf '%s' "$STATS" | sed -n 's/.*"submitted":\([0-9][0-9]*\).*/\1/p')
SUBMITTED_METRIC=$(awk '$1 == "se2gis_jobs_submitted_total" {print int($2)}' "$WORK/metrics.txt")
if [ "$SUBMITTED_METRIC" != "$SUBMITTED_STATS" ]; then
  echo "[stress] FAIL: se2gis_jobs_submitted_total=$SUBMITTED_METRIC but stats says $SUBMITTED_STATS" >&2
  exit 1
fi
TIMEOUT_DONE=$(sed -n 's/^se2gis_jobs_done_total{verdict="timeout"} \([0-9][0-9]*\)$/\1/p' "$WORK/metrics.txt")
if [ -z "$TIMEOUT_DONE" ] || [ "$TIMEOUT_DONE" -eq 0 ]; then
  echo "[stress] FAIL: no timeout verdicts counted in se2gis_jobs_done_total" >&2
  exit 1
fi
SMT_HITS_METRIC=$(awk '$1 == "se2gis_cache_smt_hits_total" {print int($2)}' "$WORK/metrics.txt")
if [ -z "$SMT_HITS_METRIC" ] || [ "$SMT_HITS_METRIC" -lt "$SMT_HITS" ]; then
  echo "[stress] FAIL: se2gis_cache_smt_hits_total=$SMT_HITS_METRIC < stats smt_hits=$SMT_HITS" >&2
  exit 1
fi
if ! grep -q '^# TYPE se2gis_queue_depth gauge$' "$WORK/metrics.txt" \
   || ! grep -q '^# TYPE se2gis_job_latency_seconds histogram$' "$WORK/metrics.txt"; then
  echo "[stress] FAIL: scrape is missing queue-depth/latency families" >&2
  exit 1
fi
# The frame-protocol `metrics` method serves the same exposition.
"$CLI" metrics --connect "unix:$SOCK" >"$WORK/metrics-frame.txt"
if ! grep -q '^se2gis_jobs_submitted_total ' "$WORK/metrics-frame.txt"; then
  echo "[stress] FAIL: frame-protocol metrics method returned no exposition" >&2
  exit 1
fi
echo "[stress] metrics: submitted=$SUBMITTED_METRIC timeouts=$TIMEOUT_DONE smt_hits=$SMT_HITS_METRIC (HTTP + frame scrapes agree with stats)"

# --- Flight dumps for timed-out jobs ----------------------------------------
DUMPS=$(ls "$WORK"/flight-j*.json 2>/dev/null | wc -l)
if [ "$DUMPS" -eq 0 ]; then
  echo "[stress] FAIL: timed-out jobs left no flight dumps under --flight-dir" >&2
  exit 1
fi
for F in "$WORK"/flight-j*.json; do
  python3 -c 'import json, sys
d = json.load(open(sys.argv[1]))
assert isinstance(d.get("traceEvents"), list) and d["traceEvents"], "empty dump"' "$F" \
    || { echo "[stress] FAIL: $F is not a loadable trace dump" >&2; exit 1; }
done
echo "[stress] flight recorder: $DUMPS timed-out job dump(s), all Perfetto-loadable"

# --- Typed rejection at queue capacity -------------------------------------
TINY_SOCK="$OUT_DIR/stress-tiny.sock"
rm -f "$TINY_SOCK"
"$DAEMON" --listen "unix:$TINY_SOCK" --workers 1 --max-queue 1 \
  >"$WORK/tiny.log" 2>&1 &
TINY_PID=$!
wait_ping "unix:$TINY_SOCK" || { echo "[stress] FAIL: tiny daemon never came up" >&2; exit 1; }

REJECTED=0
for _ in $(seq 1 10); do
  RC=0
  "$CLI" submit --connect "unix:$TINY_SOCK" --benchmark list/sum \
    --timeout-ms 20000 >/dev/null 2>"$WORK/reject.err" || RC=$?
  if [ "$RC" -eq 4 ] && grep -q overloaded "$WORK/reject.err"; then
    REJECTED=$((REJECTED + 1))
  fi
done
if [ "$REJECTED" -eq 0 ]; then
  echo "[stress] FAIL: flooding a 1-worker/1-slot daemon produced no typed rejection" >&2
  exit 1
fi
echo "[stress] admission control: $REJECTED/10 floods rejected with typed 'overloaded'"
"$CLI" drain --connect "unix:$TINY_SOCK" --deadline-ms 30000 >/dev/null
wait "$TINY_PID" || { echo "[stress] FAIL: tiny daemon exited nonzero" >&2; exit 1; }
TINY_PID=

# --- Graceful drain ---------------------------------------------------------
"$CLI" drain --connect "unix:$SOCK" >/dev/null
DRAIN_EXIT=0
wait "$DAEMON_PID" || DRAIN_EXIT=$?
DAEMON_PID=
if [ "$DRAIN_EXIT" -ne 0 ]; then
  echo "[stress] FAIL: daemon exited $DRAIN_EXIT after drain (want 0)" >&2
  exit 1
fi
if [ ! -s "$CACHE/store.meta" ] || [ ! -s "$CACHE/smt.jsonl" ]; then
  echo "[stress] FAIL: persistent store missing or empty after drain" >&2
  exit 1
fi
echo "[stress] drain clean (exit 0); store intact: $(ls "$CACHE" | tr '\n' ' ')"

# --- Shared cache tier: one solve warms the fleet ---------------------------
CACHED_SOCK="$OUT_DIR/stress-cached.sock"
CACHED_STORE="$OUT_DIR/stress-cached-store"
NODE_A_SOCK="$OUT_DIR/stress-nodeA.sock"
NODE_B_SOCK="$OUT_DIR/stress-nodeB.sock"
rm -rf "$CACHED_SOCK" "$CACHED_STORE" "$NODE_A_SOCK" "$NODE_B_SOCK" \
       "$WORK/nodeA-cache" "$WORK/nodeB-cache"

echo "[stress] cache tier: starting se2gis_cached + two served nodes..."
"$CACHED" --listen "unix:$CACHED_SOCK" --cache-dir "$CACHED_STORE" \
  >"$WORK/cached.log" 2>&1 &
CACHED_PID=$!
for _ in $(seq 1 50); do
  if "$CACHED" ping --connect "unix:$CACHED_SOCK" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
"$CACHED" ping --connect "unix:$CACHED_SOCK" >/dev/null \
  || { echo "[stress] FAIL: cache daemon never came up" >&2; exit 1; }

"$DAEMON" --listen "unix:$NODE_A_SOCK" --workers 2 \
  --cache remote --cache-addr "unix:$CACHED_SOCK" \
  --cache-dir "$WORK/nodeA-cache" --metrics-addr tcp:127.0.0.1:0 \
  >"$WORK/nodeA.log" 2>&1 &
NODE_A_PID=$!
"$DAEMON" --listen "unix:$NODE_B_SOCK" --workers 2 \
  --cache remote --cache-addr "unix:$CACHED_SOCK" \
  --cache-dir "$WORK/nodeB-cache" --metrics-addr tcp:127.0.0.1:0 \
  >"$WORK/nodeB.log" 2>&1 &
NODE_B_PID=$!
wait_ping "unix:$NODE_A_SOCK" || { echo "[stress] FAIL: node A never came up" >&2; exit 1; }
wait_ping "unix:$NODE_B_SOCK" || { echo "[stress] FAIL: node B never came up" >&2; exit 1; }

# The warm-fleet benchmark set, solved on node A first (populates the
# daemon), then on node B (whose local cache is cold — every persistent
# hit must come from the remote tier), checking verdict parity with the
# direct CLI runs computed for the stress mix above.
TIER_BENCH=(list/sum unreal/sum)
TIER_BASE=("${BASELINE[0]}" "${BASELINE[1]}")
for NODE in A B; do
  SOCK_VAR="unix:$OUT_DIR/stress-node$NODE.sock"
  for K in 0 1; do
    RC=0
    "$CLI" submit --connect "$SOCK_VAR" --benchmark "${TIER_BENCH[$K]}" \
      --timeout-ms 20000 --wait --quiet >/dev/null 2>&1 || RC=$?
    if [ "$RC" != "${TIER_BASE[$K]}" ]; then
      echo "[stress] FAIL: node $NODE got exit $RC for ${TIER_BENCH[$K]}" \
           "(direct CLI: ${TIER_BASE[$K]})" >&2
      exit 1
    fi
  done
done

# Node B's metrics must show remote-tier hits: its local store was empty,
# so its warm start came from the daemon node A populated.
NODE_B_HP=$(sed -n 's/^se2gis_served: metrics on tcp:\(.*\)$/\1/p' "$WORK/nodeB.log")
[ -n "$NODE_B_HP" ] || { echo "[stress] FAIL: node B reported no metrics address" >&2; exit 1; }
scrape "$NODE_B_HP" "$WORK/nodeB-metrics.txt" \
  || { echo "[stress] FAIL: scrape of node B failed" >&2; exit 1; }
B_REMOTE_HITS=$(awk '$1 == "se2gis_cache_remote_hits_total" {print int($2)}' "$WORK/nodeB-metrics.txt")
if [ -z "$B_REMOTE_HITS" ] || [ "$B_REMOTE_HITS" -eq 0 ]; then
  echo "[stress] FAIL: node B shows no remote cache hits" >&2
  cat "$WORK/nodeB-metrics.txt" >&2
  exit 1
fi
CACHED_STATS=$("$CACHED" stats --connect "unix:$CACHED_SOCK")
CACHED_HITS=$(printf '%s' "$CACHED_STATS" | sed -n 's/.*"hits":\([0-9][0-9]*\).*/\1/p')
echo "[stress] cache tier: node B remote_hits=$B_REMOTE_HITS, daemon hits=$CACHED_HITS"

# A few generator cases through the remote matrix column (cold+warm pair
# against the shared daemon).
if [ -x "$FUZZ" ]; then
  "$FUZZ" --gen-seed 7 --cases 3 --timeout-ms 4000 \
    --cache-addr "unix:$CACHED_SOCK" >"$WORK/fuzz-tier.log" 2>&1 \
    || { echo "[stress] FAIL: fuzz cases through the remote tier failed" >&2;
         tail -5 "$WORK/fuzz-tier.log" >&2; exit 1; }
  echo "[stress] cache tier: 3 fuzz cases ran the remote matrix column"
fi

# Kill -9 the cache daemon: node B must degrade to local-only — same
# verdicts, exit codes, no stalls (bounded by the client timeout).
kill -9 "$CACHED_PID" 2>/dev/null || true
wait "$CACHED_PID" 2>/dev/null || true
CACHED_PID=
for K in 0 1; do
  RC=0
  "$CLI" submit --connect "unix:$NODE_B_SOCK" --benchmark "${TIER_BENCH[$K]}" \
    --timeout-ms 20000 --wait --quiet >/dev/null 2>&1 || RC=$?
  if [ "$RC" != "${TIER_BASE[$K]}" ]; then
    echo "[stress] FAIL: node B verdict changed after daemon kill -9:" \
         "${TIER_BENCH[$K]} -> exit $RC (want ${TIER_BASE[$K]})" >&2
    exit 1
  fi
done
# A benchmark neither node has seen yet forces fresh SMT queries, so node
# B must actually probe the (dead) remote tier, count the failures, and
# still land the direct-CLI verdict.
FRESH_BENCH=unreal/min_no_invariant
RC=0
"$CLI" --benchmark "$FRESH_BENCH" --timeout-ms 20000 --quiet \
  >/dev/null 2>&1 || RC=$?
FRESH_BASE=$RC
RC=0
"$CLI" submit --connect "unix:$NODE_B_SOCK" --benchmark "$FRESH_BENCH" \
  --timeout-ms 20000 --wait --quiet >/dev/null 2>&1 || RC=$?
if [ "$RC" != "$FRESH_BASE" ]; then
  echo "[stress] FAIL: node B got exit $RC for $FRESH_BENCH with the daemon" \
       "dead (direct CLI: $FRESH_BASE)" >&2
  exit 1
fi
scrape "$NODE_B_HP" "$WORK/nodeB-metrics2.txt" \
  || { echo "[stress] FAIL: post-kill scrape of node B failed" >&2; exit 1; }
B_DEGRADED=$(awk '$1 == "se2gis_cache_remote_errors_total" {e=int($2)}
               $1 == "se2gis_cache_remote_degraded_total" {d=int($2)}
               END {print e + d}' "$WORK/nodeB-metrics2.txt")
if [ -z "$B_DEGRADED" ] || [ "$B_DEGRADED" -eq 0 ]; then
  echo "[stress] FAIL: node B shows neither remote errors nor degraded probes after kill -9" >&2
  exit 1
fi
echo "[stress] cache tier: daemon kill -9 degraded node B cleanly (errors+degraded=$B_DEGRADED, verdicts unchanged)"

# Drain both nodes; each must exit 0.
for NODE in A B; do
  "$CLI" drain --connect "unix:$OUT_DIR/stress-node$NODE.sock" >/dev/null
done
wait "$NODE_A_PID" || { echo "[stress] FAIL: node A exited nonzero" >&2; exit 1; }
NODE_A_PID=
wait "$NODE_B_PID" || { echo "[stress] FAIL: node B exited nonzero" >&2; exit 1; }
NODE_B_PID=

# Restart the cache daemon on the same store directory: the entries
# written before the kill must come back warm; then a clean client drain.
"$CACHED" --listen "unix:$CACHED_SOCK" --cache-dir "$CACHED_STORE" \
  >"$WORK/cached2.log" 2>&1 &
CACHED_PID=$!
for _ in $(seq 1 50); do
  if "$CACHED" ping --connect "unix:$CACHED_SOCK" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
# The top-level "entries" field precedes the per-segment breakdown, whose
# own "entries" keys a greedy match would grab instead.
WARM=$("$CACHED" stats --connect "unix:$CACHED_SOCK" \
  | sed -n 's/.*"entries":\([0-9][0-9]*\),"segments".*/\1/p')
if [ -z "$WARM" ] || [ "$WARM" -eq 0 ]; then
  echo "[stress] FAIL: restarted cache daemon reloaded no entries" >&2
  exit 1
fi
"$CACHED" drain --connect "unix:$CACHED_SOCK" >/dev/null
wait "$CACHED_PID" || { echo "[stress] FAIL: cache daemon exited nonzero after drain" >&2; exit 1; }
CACHED_PID=
echo "[stress] cache tier: restart reloaded $WARM entries; client drain clean"

echo "[stress] PASS"
