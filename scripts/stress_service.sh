#!/usr/bin/env bash
# stress_service.sh — multi-client stress of the synthesis service.
#
# Boots a se2gis_served daemon on a Unix socket with a warm shared disk
# cache, then drives it with N concurrent clients submitting a mix of
# realizable, unrealizable, and deliberately-timing-out jobs. Asserts:
#
#   1. Verdict parity: every service verdict (submit --wait exit code)
#      matches the in-process run of the same benchmark/budget.
#   2. Admission control: a second, deliberately tiny daemon (1 worker,
#      queue bound 1) answers a submit flood with typed `overloaded`
#      rejections — clients are refused, never blocked or dropped.
#   3. Warm shared cache: after the stress mix, the daemon's stats report
#      a nonzero SMT-cache hit count (clients repeat problems, so the
#      process-wide cache must pay off across connections).
#   4. Graceful drain: the daemon exits 0 by itself after `drain`, with
#      the persistent store intact on disk.
#
# Usage: scripts/stress_service.sh [build-dir] [clients] [jobs-per-client]
#   build-dir        default: build
#   clients          default: 8  (the acceptance floor)
#   jobs-per-client  default: 3
set -euo pipefail

BUILD_DIR=${1:-build}
CLIENTS=${2:-8}
JOBS_PER=${3:-3}
OUT_DIR=${STRESS_OUT_DIR:-$BUILD_DIR}
CLI="$BUILD_DIR/tools/se2gis"
DAEMON="$BUILD_DIR/tools/se2gis_served"
SOCK="$OUT_DIR/stress.sock"
CACHE="$OUT_DIR/stress-cache"
WORK="$OUT_DIR/stress-work"

if [ ! -x "$CLI" ] || [ ! -x "$DAEMON" ]; then
  echo "error: build $BUILD_DIR first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi
rm -rf "$CACHE" "$WORK" "$SOCK"
mkdir -p "$WORK"

DAEMON_PID=
TINY_PID=
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  [ -n "$TINY_PID" ] && kill "$TINY_PID" 2>/dev/null || true
}
trap cleanup EXIT

wait_ping() { # wait_ping <addr>
  for _ in $(seq 1 50); do
    if "$CLI" ping --connect "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

# The job mix: (benchmark, budget-ms). The 1 ms budget must produce a
# timeout verdict; the others resolve well inside their budget.
MIX_BENCH=(list/sum unreal/sum list/sum)
MIX_BUDGET=(20000 20000 1)

# Parity baseline: the in-process exit code of each mix entry (0
# realizable, 1 unrealizable, 2 timeout).
echo "[stress] computing in-process parity baselines..."
BASELINE=()
for K in 0 1 2; do
  RC=0
  "$CLI" --benchmark "${MIX_BENCH[$K]}" --timeout-ms "${MIX_BUDGET[$K]}" \
    --quiet >/dev/null 2>&1 || RC=$?
  BASELINE[$K]=$RC
  echo "[stress]   ${MIX_BENCH[$K]} @${MIX_BUDGET[$K]}ms -> exit $RC"
done

echo "[stress] starting daemon ($CLIENTS clients x $JOBS_PER jobs)..."
"$DAEMON" --listen "unix:$SOCK" --workers 2 --max-queue 64 \
  --cache disk --cache-dir "$CACHE" >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
wait_ping "unix:$SOCK" || { echo "[stress] FAIL: daemon never came up" >&2; exit 1; }

# --- Concurrent clients -----------------------------------------------------
client() { # client <index>
  local I=$1 RC K
  : >"$WORK/client$I.rc"
  for ((J = 0; J < JOBS_PER; ++J)); do
    K=$(((I + J) % 3)) # stagger the mix across clients
    RC=0
    "$CLI" submit --connect "unix:$SOCK" --benchmark "${MIX_BENCH[$K]}" \
      --timeout-ms "${MIX_BUDGET[$K]}" --wait --quiet \
      >>"$WORK/client$I.out" 2>&1 || RC=$?
    echo "$K $RC" >>"$WORK/client$I.rc"
  done
}

CLIENT_PIDS=()
for ((I = 0; I < CLIENTS; ++I)); do
  client "$I" &
  CLIENT_PIDS+=($!)
done
# Wait on the client pids explicitly: a bare `wait` would also block on the
# daemon, which stays up until we drain it.
for P in "${CLIENT_PIDS[@]}"; do wait "$P"; done

MISMATCH=0
TOTAL=0
for ((I = 0; I < CLIENTS; ++I)); do
  while read -r K RC; do
    TOTAL=$((TOTAL + 1))
    if [ "$RC" != "${BASELINE[$K]}" ]; then
      echo "[stress] FAIL: client $I got exit $RC for ${MIX_BENCH[$K]}" \
           "@${MIX_BUDGET[$K]}ms (in-process: ${BASELINE[$K]})" >&2
      MISMATCH=$((MISMATCH + 1))
    fi
  done <"$WORK/client$I.rc"
done
EXPECTED=$((CLIENTS * JOBS_PER))
if [ "$MISMATCH" -ne 0 ] || [ "$TOTAL" -ne "$EXPECTED" ]; then
  echo "[stress] FAIL: $MISMATCH verdict mismatches, $TOTAL/$EXPECTED jobs reported" >&2
  exit 1
fi
echo "[stress] verdict parity: $TOTAL/$EXPECTED jobs match the in-process runs"

# --- Warm shared cache ------------------------------------------------------
STATS=$("$CLI" stats --connect "unix:$SOCK")
SMT_HITS=$(printf '%s' "$STATS" | sed -n 's/.*"smt_hits":\([0-9][0-9]*\).*/\1/p')
if [ -z "$SMT_HITS" ] || [ "$SMT_HITS" -eq 0 ]; then
  echo "[stress] FAIL: no SMT-cache hits across repeated submissions" >&2
  echo "$STATS" >&2
  exit 1
fi
echo "[stress] warm cache: smt_hits=$SMT_HITS across $TOTAL jobs"

# --- Typed rejection at queue capacity -------------------------------------
TINY_SOCK="$OUT_DIR/stress-tiny.sock"
rm -f "$TINY_SOCK"
"$DAEMON" --listen "unix:$TINY_SOCK" --workers 1 --max-queue 1 \
  >"$WORK/tiny.log" 2>&1 &
TINY_PID=$!
wait_ping "unix:$TINY_SOCK" || { echo "[stress] FAIL: tiny daemon never came up" >&2; exit 1; }

REJECTED=0
for _ in $(seq 1 10); do
  RC=0
  "$CLI" submit --connect "unix:$TINY_SOCK" --benchmark list/sum \
    --timeout-ms 20000 >/dev/null 2>"$WORK/reject.err" || RC=$?
  if [ "$RC" -eq 4 ] && grep -q overloaded "$WORK/reject.err"; then
    REJECTED=$((REJECTED + 1))
  fi
done
if [ "$REJECTED" -eq 0 ]; then
  echo "[stress] FAIL: flooding a 1-worker/1-slot daemon produced no typed rejection" >&2
  exit 1
fi
echo "[stress] admission control: $REJECTED/10 floods rejected with typed 'overloaded'"
"$CLI" drain --connect "unix:$TINY_SOCK" --deadline-ms 30000 >/dev/null
wait "$TINY_PID" || { echo "[stress] FAIL: tiny daemon exited nonzero" >&2; exit 1; }
TINY_PID=

# --- Graceful drain ---------------------------------------------------------
"$CLI" drain --connect "unix:$SOCK" >/dev/null
DRAIN_EXIT=0
wait "$DAEMON_PID" || DRAIN_EXIT=$?
DAEMON_PID=
if [ "$DRAIN_EXIT" -ne 0 ]; then
  echo "[stress] FAIL: daemon exited $DRAIN_EXIT after drain (want 0)" >&2
  exit 1
fi
if [ ! -s "$CACHE/store.meta" ] || [ ! -s "$CACHE/smt.jsonl" ]; then
  echo "[stress] FAIL: persistent store missing or empty after drain" >&2
  exit 1
fi
echo "[stress] drain clean (exit 0); store intact: $(ls "$CACHE" | tr '\n' ' ')"
echo "[stress] PASS"
