#!/usr/bin/env bash
# bench_smoke.sh — parallel-runner smoke check + perf-counter trajectory.
#
# Runs a small filtered sub-suite twice through bench_fig4_quantile — once
# at SE2GIS_JOBS=1 (the historical sequential loop) and once at
# SE2GIS_JOBS=N — diffs the outcome lines, and leaves the two perf-counter
# JSON summaries next to the build tree so future PRs can record a bench
# trajectory (BENCH_smoke_j1.json / BENCH_smoke_jN.json).
#
# A third pass exercises the deadline subsystem: a 1-second budget per
# (benchmark, algorithm) pair over a wider filter, preferably against the
# asan sanitizer preset (cmake --preset asan && cmake --build --preset asan),
# asserting that every started run records a verdict — timed-out runs must
# come back as "timeout" lines, never hangs or missing records.
#
# A fourth pass exercises the memoization subsystem (src/cache/): the same
# filtered sub-suite runs twice with SE2GIS_CACHE=disk against a fresh store
# (cold, then warm). The verdicts must be identical, the warm sweep's perf
# JSON must report a nonzero SMT-cache hit count, and the pass prints the
# warm hit rate and wall-clock speedup (BENCH_smoke_cold.json /
# BENCH_smoke_warm.json).
#
# A final pass exercises the incremental-SMT session layer (src/smt/): the
# filtered sub-suite runs with SE2GIS_SMT_INCREMENTAL=off and =on (verdicts
# must match, the on-sweep must report smt_session_reuse > 0, and the perf
# JSON must carry the session counters and smt_translate quantiles),
# preferably against the tsan preset, plus a mixed realizable /
# unrealizable / timeout trio through the CLI in both modes.
#
# Usage: scripts/bench_smoke.sh [build-dir] [jobs] [filter]
#   build-dir  default: build
#   jobs       default: nproc
#   filter     default: sortedlist/m  (3 fast benchmarks)
# Env:
#   SMOKE_SAN_DIR       sanitizer build tree for the deadline pass
#                       (default: build-asan if present, else build-dir)
#   SMOKE_DEADLINE_SEC  per-pair budget for the deadline pass (default: 1)
#   SMOKE_INC_DIR       build tree for the incremental-SMT pass
#                       (default: build-tsan if present, else build-dir)
set -euo pipefail

BUILD_DIR=${1:-build}
JOBS=${2:-$(nproc)}
FILTER=${3:-sortedlist/m}
DRIVER="$BUILD_DIR/bench/bench_fig4_quantile"
OUT_DIR=${BENCH_OUT_DIR:-$BUILD_DIR}

if [ ! -x "$DRIVER" ]; then
  echo "error: $DRIVER not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

run() { # run <jobs> <json-path> <stdout-path>
  SE2GIS_JOBS=$1 SE2GIS_PERF_JSON=$2 SE2GIS_FILTER=$FILTER \
    SE2GIS_TIMEOUT_MS=${SE2GIS_TIMEOUT_MS:-20000} \
    "$DRIVER" >"$3" 2>"$3.log"
}

echo "[smoke] filter='$FILTER' sequential baseline (SE2GIS_JOBS=1)..."
T0=$(date +%s.%N)
run 1 "$OUT_DIR/BENCH_smoke_j1.json" "$OUT_DIR/smoke_j1.out"
T1=$(date +%s.%N)

echo "[smoke] parallel sweep (SE2GIS_JOBS=$JOBS)..."
run "$JOBS" "$OUT_DIR/BENCH_smoke_j${JOBS}.json" "$OUT_DIR/smoke_jN.out"
T2=$(date +%s.%N)

# Outcomes must be identical. Solve *times* legitimately vary between runs
# (and progress lines arrive in completion order under the pool), so the
# comparison extracts the (benchmark, algorithm, outcome) triples from the
# progress log, sorted, plus the solved-counts table and shape check.
outcomes() { # outcomes <stdout-path>
  { grep '^\[suite\]' "$1.log" | awk '{print $2, $3, $4}' | sort
    grep -E '^(Realizable|Unrealizable|Total|shape check)' "$1"; } \
    >"$1.outcomes"
}
outcomes "$OUT_DIR/smoke_j1.out"
outcomes "$OUT_DIR/smoke_jN.out"
if ! diff -u "$OUT_DIR/smoke_j1.out.outcomes" "$OUT_DIR/smoke_jN.out.outcomes"; then
  echo "[smoke] FAIL: parallel outcomes diverge from the sequential baseline" >&2
  exit 1
fi
echo "[smoke] outcomes identical at jobs=1 and jobs=$JOBS"

SEQ=$(echo "$T1 $T0" | awk '{printf "%.1f", $1-$2}')
PAR=$(echo "$T2 $T1" | awk '{printf "%.1f", $1-$2}')
echo "[smoke] wall clock: sequential ${SEQ}s, parallel ${PAR}s"
echo "[smoke] perf summaries: $OUT_DIR/BENCH_smoke_j1.json $OUT_DIR/BENCH_smoke_j${JOBS}.json"

# --- Deadline pass: short budget, every run must record a verdict ---------
SAN_DIR=${SMOKE_SAN_DIR:-}
if [ -z "$SAN_DIR" ]; then
  if [ -x "build-asan/bench/bench_fig4_quantile" ]; then
    SAN_DIR=build-asan
  else
    SAN_DIR=$BUILD_DIR
  fi
fi
SAN_DRIVER="$SAN_DIR/bench/bench_fig4_quantile"
DEADLINE=${SMOKE_DEADLINE_SEC:-1}

echo "[smoke] deadline pass: SE2GIS_TIMEOUT=${DEADLINE}s over filter='list' ($SAN_DRIVER)..."
SE2GIS_JOBS=$JOBS SE2GIS_FILTER=list SE2GIS_TIMEOUT="$DEADLINE" \
  SE2GIS_TIMEOUT_MS= \
  "$SAN_DRIVER" >"$OUT_DIR/smoke_deadline.out" 2>"$OUT_DIR/smoke_deadline.out.log"

# Every [suite] progress line must carry one of the four verdicts; a pair
# that started but never reported would show up as a missing/odd line (or,
# worse, the driver would still be running and the redirect above would
# never return). Progress lines now come from the structured logger, so the
# first field is the full [suite][level][timestamp][t=N] prefix (no spaces)
# and the benchmark name is field 2.
STARTED=$(grep -c '^\[suite\]\[[a-z]*\]\[[^ ]*\] [a-z]' "$OUT_DIR/smoke_deadline.out.log" || true)
VERDICTS=$(awk '/^\[suite\]\[[a-z]*\]\[[^ ]*\] [a-z]/ {
    ok = 0
    for (i = 1; i <= NF; ++i)
      if ($i ~ /^(realizable|unrealizable|timeout|failed)$/) ok = 1
    if (ok) n++
  } END { print n+0 }' "$OUT_DIR/smoke_deadline.out.log")
if [ "$STARTED" -eq 0 ] || [ "$STARTED" != "$VERDICTS" ]; then
  echo "[smoke] FAIL: deadline pass started $STARTED runs but recorded" \
       "$VERDICTS verdicts" >&2
  exit 1
fi
TIMEOUTS=$(grep -c ' timeout ' "$OUT_DIR/smoke_deadline.out.log" || true)
echo "[smoke] deadline pass: $STARTED runs, $STARTED verdicts ($TIMEOUTS timeout)"

# --- Cache pass: cold-then-warm double sweep against a fresh store --------
CACHE_DIR="$OUT_DIR/smoke-cache"
rm -rf "$CACHE_DIR"

cache_sweep() { # cache_sweep <json-path> <stdout-path>
  SE2GIS_JOBS=$JOBS SE2GIS_PERF_JSON=$1 SE2GIS_FILTER=$FILTER \
    SE2GIS_TIMEOUT_MS=${SE2GIS_TIMEOUT_MS:-20000} \
    SE2GIS_CACHE=disk SE2GIS_CACHE_DIR="$CACHE_DIR" \
    "$DRIVER" >"$2" 2>"$2.log"
}
perf_key() { # perf_key <json-path> <key>  (no jq dependency)
  sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" "$1" | head -n1
}

echo "[smoke] cache pass: cold sweep (SE2GIS_CACHE=disk, fresh store)..."
T3=$(date +%s.%N)
cache_sweep "$OUT_DIR/BENCH_smoke_cold.json" "$OUT_DIR/smoke_cold.out"
T4=$(date +%s.%N)
echo "[smoke] cache pass: warm sweep (same store)..."
cache_sweep "$OUT_DIR/BENCH_smoke_warm.json" "$OUT_DIR/smoke_warm.out"
T5=$(date +%s.%N)

# Warm-start correctness: the cached second sweep must reproduce the cold
# sweep's verdicts exactly.
outcomes "$OUT_DIR/smoke_cold.out"
outcomes "$OUT_DIR/smoke_warm.out"
if ! diff -u "$OUT_DIR/smoke_cold.out.outcomes" "$OUT_DIR/smoke_warm.out.outcomes"; then
  echo "[smoke] FAIL: warm (cached) outcomes diverge from the cold sweep" >&2
  exit 1
fi
echo "[smoke] cache pass: cold and warm verdicts identical"

HITS=$(perf_key "$OUT_DIR/BENCH_smoke_warm.json" cache_smt_hits)
MISSES=$(perf_key "$OUT_DIR/BENCH_smoke_warm.json" cache_smt_misses)
if [ -z "$HITS" ] || [ "$HITS" -eq 0 ]; then
  echo "[smoke] FAIL: warm sweep reported no SMT-cache hits" \
       "(cache_smt_hits=${HITS:-missing} in BENCH_smoke_warm.json)" >&2
  exit 1
fi
COLD_S=$(echo "$T4 $T3" | awk '{printf "%.1f", $1-$2}')
WARM_S=$(echo "$T5 $T4" | awk '{printf "%.1f", $1-$2}')
RATE=$(echo "$HITS ${MISSES:-0}" | awk '{printf "%.1f", 100*$1/($1+$2)}')
SPEEDUP=$(echo "$COLD_S $WARM_S" | awk '{printf "%.2f", ($2 > 0 ? $1 / $2 : 0)}')
echo "[smoke] cache pass: warm SMT hit rate ${RATE}% ($HITS hits," \
     "${MISSES:-0} misses); cold ${COLD_S}s -> warm ${WARM_S}s" \
     "(speedup ${SPEEDUP}x)"
echo "[smoke] perf summaries: $OUT_DIR/BENCH_smoke_cold.json $OUT_DIR/BENCH_smoke_warm.json"

# --- Trace pass: Chrome trace_event export + latency quantiles ------------
TRACE_JSON="$OUT_DIR/smoke_trace.json"
rm -f "$TRACE_JSON"

echo "[smoke] trace pass: SE2GIS_TRACE on (SE2GIS_JOBS=$JOBS)..."
T6=$(date +%s.%N)
SE2GIS_JOBS=$JOBS SE2GIS_PERF_JSON="$OUT_DIR/BENCH_smoke_trace.json" \
  SE2GIS_FILTER=$FILTER SE2GIS_TIMEOUT_MS=${SE2GIS_TIMEOUT_MS:-20000} \
  SE2GIS_TRACE="$TRACE_JSON" \
  "$DRIVER" >"$OUT_DIR/smoke_trace.out" 2>"$OUT_DIR/smoke_trace.out.log"
T7=$(date +%s.%N)

if [ ! -s "$TRACE_JSON" ]; then
  echo "[smoke] FAIL: SE2GIS_TRACE produced no trace file at $TRACE_JSON" >&2
  exit 1
fi

# The trace must parse as JSON (python3 when available, else a brace-balance
# sanity check) and contain at least one span per instrumented category.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TRACE_JSON" "$JOBS" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
jobs = int(sys.argv[2])
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
cats = {e["cat"] for e in spans}
tids = {e["tid"] for e in spans}
for want in ("suite", "round", "smt"):
    assert want in cats, f"no '{want}' spans in trace (have {sorted(cats)})"
# One track per worker: only a multi-worker sweep can owe us multiple.
want_tids = min(2, jobs)
assert len(tids) >= want_tids, \
    f"expected >= {want_tids} thread tracks at jobs={jobs}, got {sorted(tids)}"
print(f"[smoke] trace pass: {len(spans)} spans, categories {sorted(cats)}, "
      f"{len(tids)} thread tracks")
PY
else
  for CAT in suite round smt; do
    if ! grep -q "\"cat\":\"$CAT\"" "$TRACE_JSON"; then
      echo "[smoke] FAIL: no '$CAT' spans in $TRACE_JSON" >&2
      exit 1
    fi
  done
  echo "[smoke] trace pass: category spot-check passed (python3 unavailable)"
fi

# The perf JSON must now carry the latency quantiles.
for KEY in smt_check_p50_ms smt_check_p99_ms enum_round_p50_ms enum_round_p99_ms; do
  if ! grep -q "\"$KEY\"" "$OUT_DIR/BENCH_smoke_trace.json"; then
    echo "[smoke] FAIL: perf JSON lacks \"$KEY\"" >&2
    exit 1
  fi
done
SMT_COUNT=$(perf_key "$OUT_DIR/BENCH_smoke_trace.json" smt_check_count)
if [ -z "$SMT_COUNT" ] || [ "$SMT_COUNT" -eq 0 ]; then
  echo "[smoke] FAIL: smt_check histogram recorded no samples" >&2
  exit 1
fi
TRACE_S=$(echo "$T7 $T6" | awk '{printf "%.1f", $1-$2}')
echo "[smoke] trace pass: perf quantile keys present ($SMT_COUNT SMT samples);" \
     "traced sweep ${TRACE_S}s vs untraced ${PAR}s"
echo "[smoke] trace file: $TRACE_JSON (load in ui.perfetto.dev)"

# --- Service pass: daemon round trip, verdict parity, graceful drain ------
# Prefers the tsan preset when built (cmake --preset tsan && cmake --build
# --preset tsan): TSan's exit-time checks then double as the "zero leaked
# threads" assertion — a thread still alive at exit is a reported leak.
SVC_DIR=${SMOKE_SVC_DIR:-}
if [ -z "$SVC_DIR" ]; then
  if [ -x "build-tsan/tools/se2gis_served" ]; then
    SVC_DIR=build-tsan
  else
    SVC_DIR=$BUILD_DIR
  fi
fi
SVC_DAEMON="$SVC_DIR/tools/se2gis_served"
SVC_CLI="$SVC_DIR/tools/se2gis"
SVC_SOCK="$OUT_DIR/smoke-service.sock"
SVC_CACHE="$OUT_DIR/smoke-cache-svc"
rm -rf "$SVC_CACHE" "$SVC_SOCK"

if [ ! -x "$SVC_DAEMON" ]; then
  echo "[smoke] FAIL: $SVC_DAEMON not built" >&2
  exit 1
fi

echo "[smoke] service pass: starting daemon ($SVC_DAEMON)..."
"$SVC_DAEMON" --listen "unix:$SVC_SOCK" --workers 2 \
  --cache disk --cache-dir "$SVC_CACHE" \
  >"$OUT_DIR/smoke_service.out" 2>&1 &
SVC_PID=$!
trap '[ -n "${SVC_PID:-}" ] && kill "$SVC_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if "$SVC_CLI" ping --connect "unix:$SVC_SOCK" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
if ! "$SVC_CLI" ping --connect "unix:$SVC_SOCK" >/dev/null 2>&1; then
  echo "[smoke] FAIL: daemon never answered a ping" >&2
  exit 1
fi

# Three jobs — realizable, unrealizable, and a 1 ms budget that must come
# back as a timeout verdict — each checked for parity against the direct
# (in-process) CLI on the same benchmark.
svc_job() { # svc_job <benchmark> <timeout-ms>
  set +e
  "$SVC_CLI" submit --connect "unix:$SVC_SOCK" --benchmark "$1" \
    --timeout-ms "$2" --wait --quiet >/dev/null 2>&1
  SVC_RC=$?
  "$SVC_CLI" --benchmark "$1" --timeout-ms "$2" --quiet >/dev/null 2>&1
  DIRECT_RC=$?
  set -e
  if [ "$SVC_RC" != "$DIRECT_RC" ]; then
    echo "[smoke] FAIL: service verdict for $1 (exit $SVC_RC) diverges" \
         "from the direct run (exit $DIRECT_RC)" >&2
    exit 1
  fi
  echo "[smoke] service pass: $1 -> exit $SVC_RC (parity with direct run)"
}
svc_job list/sum 20000
svc_job unreal/sum 20000
svc_job list/sum 1   # deadline fires inside the run: timeout verdict (2)

# Graceful drain: the daemon must exit 0 on its own (no kill) with the
# persistent store intact on disk.
"$SVC_CLI" drain --connect "unix:$SVC_SOCK" >/dev/null
SVC_EXIT=0
wait "$SVC_PID" || SVC_EXIT=$?
SVC_PID=
if [ "$SVC_EXIT" -ne 0 ]; then
  echo "[smoke] FAIL: daemon exited $SVC_EXIT after drain (want 0)" >&2
  exit 1
fi
if [ ! -s "$SVC_CACHE/store.meta" ]; then
  echo "[smoke] FAIL: drained daemon left no persistent store" >&2
  exit 1
fi
echo "[smoke] service pass: drain clean (exit 0), store intact ($SVC_CACHE)"

# --- Incremental-SMT pass: session reuse + verdict parity vs fresh --------
# The same filtered sub-suite runs twice — once with the incremental session
# layer off (fresh context per query, the historical model) and once on.
# Verdicts must be identical, the incremental sweep must actually reuse
# sessions, and the perf JSON must carry the new session counters and the
# smt_translate quantiles. Prefers the tsan preset so the per-thread session
# slots run under the race detector.
INC_DIR=${SMOKE_INC_DIR:-}
if [ -z "$INC_DIR" ]; then
  if [ -x "build-tsan/bench/bench_fig4_quantile" ]; then
    INC_DIR=build-tsan
  else
    INC_DIR=$BUILD_DIR
  fi
fi
INC_DRIVER="$INC_DIR/bench/bench_fig4_quantile"
INC_CLI="$INC_DIR/tools/se2gis"

inc_sweep() { # inc_sweep <on|off> <json-path> <stdout-path>
  # Generous budget: the pass checks off-vs-on verdict identity, and the
  # tsan build runs sortedlist/max in ~13s solo — a 20s budget flakes
  # under jobs=N contention on small machines.
  SE2GIS_JOBS=$JOBS SE2GIS_PERF_JSON=$2 SE2GIS_FILTER=$FILTER \
    SE2GIS_TIMEOUT_MS=${SE2GIS_TIMEOUT_MS:-60000} \
    SE2GIS_SMT_INCREMENTAL=$1 \
    "$INC_DRIVER" >"$3" 2>"$3.log"
}

echo "[smoke] incremental pass: fresh-context sweep (SE2GIS_SMT_INCREMENTAL=off, $INC_DIR)..."
inc_sweep off "$OUT_DIR/BENCH_smoke_fresh.json" "$OUT_DIR/smoke_fresh.out"
echo "[smoke] incremental pass: session sweep (SE2GIS_SMT_INCREMENTAL=on)..."
inc_sweep on "$OUT_DIR/BENCH_smoke_incr.json" "$OUT_DIR/smoke_incr.out"

outcomes "$OUT_DIR/smoke_fresh.out"
outcomes "$OUT_DIR/smoke_incr.out"
if ! diff -u "$OUT_DIR/smoke_fresh.out.outcomes" "$OUT_DIR/smoke_incr.out.outcomes"; then
  echo "[smoke] FAIL: incremental-session outcomes diverge from fresh contexts" >&2
  exit 1
fi
echo "[smoke] incremental pass: verdicts identical in both modes"

REUSE=$(perf_key "$OUT_DIR/BENCH_smoke_incr.json" smt_session_reuse)
if [ -z "$REUSE" ] || [ "$REUSE" -eq 0 ]; then
  echo "[smoke] FAIL: incremental sweep reused no sessions" \
       "(smt_session_reuse=${REUSE:-missing} in BENCH_smoke_incr.json)" >&2
  exit 1
fi
OFF_REUSE=$(perf_key "$OUT_DIR/BENCH_smoke_fresh.json" smt_session_reuse)
if [ "${OFF_REUSE:-0}" -ne 0 ]; then
  echo "[smoke] FAIL: off-mode sweep reported session reuse" \
       "(smt_session_reuse=$OFF_REUSE — the toggle is not honored)" >&2
  exit 1
fi
for KEY in smt_session_reuse smt_session_fresh smt_push smt_pop \
           smt_translate_p50_ms smt_translate_p99_ms; do
  if ! grep -q "\"$KEY\"" "$OUT_DIR/BENCH_smoke_incr.json"; then
    echo "[smoke] FAIL: perf JSON lacks \"$KEY\"" >&2
    exit 1
  fi
done
FRESH_N=$(perf_key "$OUT_DIR/BENCH_smoke_incr.json" smt_session_fresh)
echo "[smoke] incremental pass: $REUSE reused / ${FRESH_N:-0} fresh sessions;" \
     "quantile keys present"

# Per-benchmark verdict parity on a mixed trio — realizable, unrealizable,
# and a 1 ms budget that must come back as a timeout — through the direct
# CLI in both modes (exit codes encode the verdict).
inc_job() { # inc_job <benchmark> <timeout-ms>
  set +e
  SE2GIS_SMT_INCREMENTAL=on "$INC_CLI" --benchmark "$1" \
    --timeout-ms "$2" --quiet >/dev/null 2>&1
  ON_RC=$?
  SE2GIS_SMT_INCREMENTAL=off "$INC_CLI" --benchmark "$1" \
    --timeout-ms "$2" --quiet >/dev/null 2>&1
  OFF_RC=$?
  set -e
  if [ "$ON_RC" != "$OFF_RC" ]; then
    echo "[smoke] FAIL: incremental verdict for $1 (exit $ON_RC) diverges" \
         "from fresh contexts (exit $OFF_RC)" >&2
    exit 1
  fi
  echo "[smoke] incremental pass: $1 -> exit $ON_RC (parity in both modes)"
}
inc_job list/sum 20000
inc_job unreal/sum 20000
inc_job list/sum 1   # deadline fires inside the run: timeout verdict (2)
echo "[smoke] perf summaries: $OUT_DIR/BENCH_smoke_fresh.json $OUT_DIR/BENCH_smoke_incr.json"

# --- CHC pass: raced unrealizability channel + Evidence provenance --------
# The unrealizable subset runs once through the suite driver under
# SE2GIS_UNREAL=race. Plain SEGIS has no unrealizability outcome of its
# own, so in race mode every one of its Unrealizable verdicts comes from
# the raced CHC prover — guaranteeing chc_race_wins > 0 whenever the
# channel concludes anything. The assertions are:
#   1. zero contradictory verdicts between channels: no (benchmark, algo)
#      pair may be realizable in one sweep and unrealizable in the other
#      (witness-only vs race) — extra Unrealizable rows in race mode are
#      the CHC channel upgrading timeouts and are expected;
#   2. chc_queries > 0 and chc_race_wins >= 1 in the race perf JSON;
#   3. CLI spot checks: --unreal chc/race/witness agree on unreal/sum,
#      the race verdict line carries the CHC Evidence, and a bogus mode is
#      a usage error (exit 64).
CHC_FILTER=${SMOKE_CHC_FILTER:-unreal/s}
CHC_TIMEOUT_MS=${SMOKE_CHC_TIMEOUT_MS:-6000}
CHC_CLI="$BUILD_DIR/tools/se2gis"

chc_sweep() { # chc_sweep <mode> <json-path> <stdout-path>
  SE2GIS_JOBS=$JOBS SE2GIS_PERF_JSON=$2 SE2GIS_FILTER=$CHC_FILTER \
    SE2GIS_TIMEOUT_MS=$CHC_TIMEOUT_MS SE2GIS_UNREAL=$1 \
    "$DRIVER" >"$3" 2>"$3.log"
}

echo "[smoke] chc pass: witness-only sweep (filter='$CHC_FILTER')..."
chc_sweep witness "$OUT_DIR/BENCH_smoke_chc_wit.json" "$OUT_DIR/smoke_chc_wit.out"
echo "[smoke] chc pass: race sweep (SE2GIS_UNREAL=race)..."
chc_sweep race "$OUT_DIR/BENCH_smoke_chc_race.json" "$OUT_DIR/smoke_chc_race.out"

# Contradiction check: join the two sweeps on (benchmark, algorithm) and
# flag any pair where one channel says realizable and the other says
# unrealizable. Timeout/failed rows are inconclusive and never contradict.
verdict_table() { # verdict_table <stdout-path>
  grep '^\[suite\]' "$1.log" | awk '{print $2, $3, $4}' | sort
}
verdict_table "$OUT_DIR/smoke_chc_wit.out" >"$OUT_DIR/smoke_chc_wit.verdicts"
verdict_table "$OUT_DIR/smoke_chc_race.out" >"$OUT_DIR/smoke_chc_race.verdicts"
CONTRA=$(join -j1 \
    <(awk '{print $1"/"$2, $3}' "$OUT_DIR/smoke_chc_wit.verdicts" | sort) \
    <(awk '{print $1"/"$2, $3}' "$OUT_DIR/smoke_chc_race.verdicts" | sort) \
  | awk '($2 == "realizable" && $3 == "unrealizable") ||
         ($2 == "unrealizable" && $3 == "realizable")' | tee /dev/stderr | wc -l)
if [ "$CONTRA" -ne 0 ]; then
  echo "[smoke] FAIL: $CONTRA contradictory verdict(s) between the witness" \
       "and race channels (above)" >&2
  exit 1
fi
echo "[smoke] chc pass: zero contradictory verdicts between channels"

CHC_Q=$(perf_key "$OUT_DIR/BENCH_smoke_chc_race.json" chc_queries)
CHC_WINS=$(perf_key "$OUT_DIR/BENCH_smoke_chc_race.json" chc_race_wins)
if [ -z "$CHC_Q" ] || [ "$CHC_Q" -eq 0 ]; then
  echo "[smoke] FAIL: race sweep issued no CHC queries" \
       "(chc_queries=${CHC_Q:-missing} in BENCH_smoke_chc_race.json)" >&2
  exit 1
fi
if [ -z "$CHC_WINS" ] || [ "$CHC_WINS" -eq 0 ]; then
  echo "[smoke] FAIL: race sweep recorded no CHC race wins" \
       "(chc_race_wins=${CHC_WINS:-missing} in BENCH_smoke_chc_race.json)" >&2
  exit 1
fi
echo "[smoke] chc pass: chc_queries=$CHC_Q chc_race_wins=$CHC_WINS"

# CLI spot checks: all three modes must agree that unreal/sum is
# unrealizable (exit 1), the race/chc verdict lines must carry the CHC
# Evidence, and an unknown mode is a usage error.
for MODE in chc race witness; do
  set +e
  OUTLINE=$("$CHC_CLI" --benchmark unreal/sum --unreal "$MODE" \
    --algo segis --timeout-ms "$CHC_TIMEOUT_MS" --quiet 2>&1)
  RC=$?
  set -e
  WANT_RC=1
  [ "$MODE" = witness ] && WANT_RC=2 # plain SEGIS alone cannot conclude
  if [ "$RC" -ne "$WANT_RC" ]; then
    echo "[smoke] FAIL: --unreal $MODE on unreal/sum exited $RC (want $WANT_RC): $OUTLINE" >&2
    exit 1
  fi
  if [ "$MODE" != witness ] && ! echo "$OUTLINE" | grep -q 'via chc'; then
    echo "[smoke] FAIL: --unreal $MODE verdict line lacks CHC evidence: $OUTLINE" >&2
    exit 1
  fi
done
set +e
"$CHC_CLI" --benchmark unreal/sum --unreal bogus >/dev/null 2>&1
BOGUS_RC=$?
set -e
if [ "$BOGUS_RC" -ne 64 ]; then
  echo "[smoke] FAIL: --unreal bogus exited $BOGUS_RC (want usage error 64)" >&2
  exit 1
fi
echo "[smoke] chc pass: CLI modes agree on unreal/sum; evidence printed;" \
     "bogus mode rejected"
echo "[smoke] perf summaries: $OUT_DIR/BENCH_smoke_chc_wit.json $OUT_DIR/BENCH_smoke_chc_race.json"

# --- Fuzz pass: generation, differential matrix, shrinking end-to-end -----
# 1. Shipped code must be clean and byte-for-byte deterministic: two runs
#    with the same seed produce identical output and exit 0.
# 2. --inject-bug flips one verdict per case, so the same run must detect
#    the planted contradictions, shrink each case to a reproducer no larger
#    than the original, and write a corpus entry — exercising the whole
#    failure path on healthy code.
# 3. The written reproducer replays: clean without the planted bug, failing
#    (exit 1) with it.
FUZZ="$BUILD_DIR/tools/se2gis_fuzz"
FUZZ_SEED=${SMOKE_FUZZ_SEED:-7}
FUZZ_CASES=${SMOKE_FUZZ_CASES:-15}
FUZZ_CORPUS="$OUT_DIR/smoke-fuzz-corpus"
rm -rf "$FUZZ_CORPUS"

if [ ! -x "$FUZZ" ]; then
  echo "[smoke] FAIL: $FUZZ not built" >&2
  exit 1
fi

echo "[smoke] fuzz pass: $FUZZ_CASES cases at --gen-seed $FUZZ_SEED, twice..."
"$FUZZ" --gen-seed "$FUZZ_SEED" --cases "$FUZZ_CASES" \
  >"$OUT_DIR/smoke_fuzz_1.out" 2>"$OUT_DIR/smoke_fuzz_1.out.log"
"$FUZZ" --gen-seed "$FUZZ_SEED" --cases "$FUZZ_CASES" \
  >"$OUT_DIR/smoke_fuzz_2.out" 2>"$OUT_DIR/smoke_fuzz_2.out.log"
if ! cmp -s "$OUT_DIR/smoke_fuzz_1.out" "$OUT_DIR/smoke_fuzz_2.out"; then
  diff -u "$OUT_DIR/smoke_fuzz_1.out" "$OUT_DIR/smoke_fuzz_2.out" | head -20 >&2
  echo "[smoke] FAIL: fuzz output is not deterministic for a fixed seed" >&2
  exit 1
fi
if ! grep -q ' 0 failures' "$OUT_DIR/smoke_fuzz_1.out"; then
  tail -5 "$OUT_DIR/smoke_fuzz_1.out" >&2
  echo "[smoke] FAIL: fuzzing found real failures on shipped code (above)" >&2
  exit 1
fi
echo "[smoke] fuzz pass: deterministic, $(tail -1 "$OUT_DIR/smoke_fuzz_1.out" | sed 's/^fuzz summary: //')"

echo "[smoke] fuzz pass: planted-bug run (--inject-bug, shrink + corpus)..."
set +e
"$FUZZ" --gen-seed "$FUZZ_SEED" --cases 3 --inject-bug --corpus "$FUZZ_CORPUS" \
  >"$OUT_DIR/smoke_fuzz_inject.out" 2>"$OUT_DIR/smoke_fuzz_inject.out.log"
INJECT_RC=$?
set -e
if [ "$INJECT_RC" -ne 1 ]; then
  echo "[smoke] FAIL: --inject-bug run exited $INJECT_RC (want 1: planted" \
       "bugs must be detected)" >&2
  exit 1
fi
if ! grep -q 'shrunk' "$OUT_DIR/smoke_fuzz_inject.out"; then
  echo "[smoke] FAIL: --inject-bug run never shrank a failing case" >&2
  exit 1
fi
# Shrinking must never grow a case.
if awk '/shrunk/ { gsub("->",""); if ($4+0 < $5+0) bad=1 } END { exit bad }' \
    "$OUT_DIR/smoke_fuzz_inject.out"; then :; else
  grep 'shrunk' "$OUT_DIR/smoke_fuzz_inject.out" >&2
  echo "[smoke] FAIL: a shrunk reproducer is larger than the original" >&2
  exit 1
fi
REPRO=$(ls "$FUZZ_CORPUS"/*.se2 2>/dev/null | head -n1)
if [ -z "$REPRO" ] || [ ! -s "${REPRO%.se2}.json" ]; then
  echo "[smoke] FAIL: no reproducer (.se2 + .json manifest) in $FUZZ_CORPUS" >&2
  exit 1
fi
set +e
"$FUZZ" --replay "$REPRO" >/dev/null 2>&1
CLEAN_RC=$?
"$FUZZ" --replay "$REPRO" --inject-bug >/dev/null 2>&1
PLANTED_RC=$?
set -e
if [ "$CLEAN_RC" -ne 0 ] || [ "$PLANTED_RC" -ne 1 ]; then
  echo "[smoke] FAIL: reproducer replay: clean exit $CLEAN_RC (want 0)," \
       "planted exit $PLANTED_RC (want 1)" >&2
  exit 1
fi
SHRUNK=$(grep -c 'shrunk' "$OUT_DIR/smoke_fuzz_inject.out")
echo "[smoke] fuzz pass: planted bugs detected, $SHRUNK case(s) shrunk," \
     "reproducer $(basename "$REPRO") replays clean without the plant"

# --- Remote-cache pass: cold vs daemon-warmed sweep, identical verdicts ---
# A se2gis_cached daemon backs two sweeps in SE2GIS_CACHE=remote mode. The
# cold sweep (fresh local dir A) populates the daemon; the warm sweep runs
# against a *different* fresh local dir B, so every persistent hit it gets
# must have crossed the wire. Asserts identical verdicts, a nonzero
# cache_remote_hits count in the warm perf JSON, zero remote errors on a
# healthy daemon, and a clean client-driven drain.
RCACHED="$BUILD_DIR/tools/se2gis_cached"
RCACHED_SOCK="$OUT_DIR/smoke-cached.sock"
RCACHED_STORE="$OUT_DIR/smoke-cached-store"
rm -rf "$RCACHED_SOCK" "$RCACHED_STORE" \
       "$OUT_DIR/smoke-rcache-a" "$OUT_DIR/smoke-rcache-b"

if [ ! -x "$RCACHED" ]; then
  echo "[smoke] FAIL: $RCACHED not built" >&2
  exit 1
fi

echo "[smoke] remote pass: starting se2gis_cached..."
"$RCACHED" --listen "unix:$RCACHED_SOCK" --cache-dir "$RCACHED_STORE" \
  >"$OUT_DIR/smoke_cached.out" 2>&1 &
RCACHED_PID=$!
trap '[ -n "${RCACHED_PID:-}" ] && kill "$RCACHED_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  if "$RCACHED" ping --connect "unix:$RCACHED_SOCK" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
"$RCACHED" ping --connect "unix:$RCACHED_SOCK" >/dev/null \
  || { echo "[smoke] FAIL: cache daemon never came up" >&2; exit 1; }

remote_sweep() { # remote_sweep <local-dir> <json-path> <stdout-path>
  SE2GIS_JOBS=$JOBS SE2GIS_PERF_JSON=$2 SE2GIS_FILTER=$FILTER \
    SE2GIS_TIMEOUT_MS=${SE2GIS_TIMEOUT_MS:-20000} \
    SE2GIS_CACHE=remote SE2GIS_CACHE_ADDR="unix:$RCACHED_SOCK" \
    SE2GIS_CACHE_DIR="$1" \
    "$DRIVER" >"$3" 2>"$3.log"
}

echo "[smoke] remote pass: cold sweep (fresh local dir, daemon empty)..."
T8=$(date +%s.%N)
remote_sweep "$OUT_DIR/smoke-rcache-a" \
  "$OUT_DIR/BENCH_smoke_remote_cold.json" "$OUT_DIR/smoke_rcold.out"
T9=$(date +%s.%N)
echo "[smoke] remote pass: warm sweep (different local dir — hits must be remote)..."
remote_sweep "$OUT_DIR/smoke-rcache-b" \
  "$OUT_DIR/BENCH_smoke_remote_warm.json" "$OUT_DIR/smoke_rwarm.out"
T10=$(date +%s.%N)

outcomes "$OUT_DIR/smoke_rcold.out"
outcomes "$OUT_DIR/smoke_rwarm.out"
if ! diff -u "$OUT_DIR/smoke_rcold.out.outcomes" "$OUT_DIR/smoke_rwarm.out.outcomes"; then
  echo "[smoke] FAIL: daemon-warmed outcomes diverge from the cold sweep" >&2
  exit 1
fi
echo "[smoke] remote pass: cold and daemon-warmed verdicts identical"

R_HITS=$(perf_key "$OUT_DIR/BENCH_smoke_remote_warm.json" cache_remote_hits)
R_MISSES=$(perf_key "$OUT_DIR/BENCH_smoke_remote_warm.json" cache_remote_misses)
R_ERRS=$(perf_key "$OUT_DIR/BENCH_smoke_remote_warm.json" cache_remote_errors)
if [ -z "$R_HITS" ] || [ "$R_HITS" -eq 0 ]; then
  echo "[smoke] FAIL: warm sweep reported no remote cache hits" \
       "(cache_remote_hits=${R_HITS:-missing} in BENCH_smoke_remote_warm.json)" >&2
  exit 1
fi
if [ "${R_ERRS:-0}" -ne 0 ]; then
  echo "[smoke] FAIL: warm sweep hit $R_ERRS remote errors against a healthy daemon" >&2
  exit 1
fi
RCOLD_S=$(echo "$T9 $T8" | awk '{printf "%.1f", $1-$2}')
RWARM_S=$(echo "$T10 $T9" | awk '{printf "%.1f", $1-$2}')
RSPEEDUP=$(echo "$RCOLD_S $RWARM_S" | awk '{printf "%.2f", ($2 > 0 ? $1 / $2 : 0)}')
echo "[smoke] remote pass: $R_HITS remote hits, ${R_MISSES:-0} misses," \
     "0 errors; cold ${RCOLD_S}s -> warm ${RWARM_S}s (speedup ${RSPEEDUP}x)"

"$RCACHED" drain --connect "unix:$RCACHED_SOCK" >/dev/null
RCACHED_EXIT=0
wait "$RCACHED_PID" || RCACHED_EXIT=$?
RCACHED_PID=
if [ "$RCACHED_EXIT" -ne 0 ]; then
  echo "[smoke] FAIL: cache daemon exited $RCACHED_EXIT after drain (want 0)" >&2
  exit 1
fi
echo "[smoke] remote pass: daemon drain clean (exit 0)"
echo "[smoke] perf summaries: $OUT_DIR/BENCH_smoke_remote_cold.json $OUT_DIR/BENCH_smoke_remote_warm.json"
