#!/usr/bin/env python3
"""ASCII rendering of Figure 5 (log-log scatter) from bench output.

Usage: scripts/plot_fig5.py [bench_output.txt]

Reads the CSV block emitted by bench_fig5_scatter
("benchmark,kind,se2gis_ms,segis_uc_ms") and draws the paper's scatter:
SEGIS+UC time (x) against SE2GIS time (y), both log scale, with 'r' for
realizable and 'u' for unrealizable benchmarks; points below the diagonal
are SE2GIS wins. No third-party dependencies.
"""

import math
import sys


def read_points(path):
    points = []
    in_csv = False
    for line in open(path, encoding="utf-8"):
        line = line.strip()
        if line.startswith("benchmark,kind,se2gis_ms"):
            in_csv = True
            continue
        if in_csv:
            parts = line.split(",")
            if len(parts) != 4:
                in_csv = False
                continue
            try:
                points.append((parts[1], float(parts[2]), float(parts[3])))
            except ValueError:
                in_csv = False
    return points


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    points = read_points(path)
    if not points:
        sys.exit(f"no scatter CSV found in {path}; run bench_fig5_scatter")

    size = 40
    times = [t for _, a, b in points for t in (a, b)]
    lo = math.log10(max(min(times), 0.1))
    hi = math.log10(max(times))
    span = max(hi - lo, 1e-9)
    grid = [[" "] * size for _ in range(size)]
    for y in range(size):  # the x = y diagonal
        grid[size - 1 - y][y] = "."
    for kind, se2, uc in points:
        x = int((math.log10(max(uc, 0.1)) - lo) / span * (size - 1))
        y = size - 1 - int((math.log10(max(se2, 0.1)) - lo) / span * (size - 1))
        grid[y][x] = "r" if kind == "realizable" else "u"

    print(f"Figure 5 — SE2GIS (y) vs SEGIS+UC (x), log ms, from {path}")
    print("  r = realizable, u = unrealizable; below the diagonal = SE2GIS "
          "faster")
    for i, row in enumerate(grid):
        label = f"{10 ** hi:.0f}" if i == 0 else (
            f"{10 ** lo:.0f}" if i == size - 1 else "")
        print(f"{label:>7} |" + "".join(row))
    print(" " * 8 + "+" + "-" * size)
    print(" " * 9 + f"{10 ** lo:.0f}{'SEGIS+UC ms':^{size - 8}}{10 ** hi:.0f}")


if __name__ == "__main__":
    main()
