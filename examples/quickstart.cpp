//===- quickstart.cpp - Minimal end-to-end use of the library -------------===//
///
/// \file
/// Quickstart: the paper's §1.1 running example. We have a linear-time
/// `lmin` over arbitrary non-empty lists and want a constant-time `mins`
/// over *sorted* lists. The recursion skeleton forbids recursing on the
/// tail, so the synthesizer must discover the invariant that the head of a
/// sorted list is no larger than the minimum of its tail.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/SynthesisTask.h"
#include "frontend/Elaborate.h"

#include <cstdio>
#include <memory>

using namespace se2gis;

static const char *Source = R"(
type list = Elt of int | Cons of int * list

(* Reference implementation: linear-time minimum. *)
let rec lmin = function
  | Elt a -> a
  | Cons (a, l) -> min a (lmin l)

(* Type invariant: the list is sorted in increasing order. *)
let rec sorted = function
  | Elt a -> true
  | Cons (a, l) -> a <= head l && sorted l
and head = function
  | Elt a -> a
  | Cons (a, l) -> a

(* Recursion skeleton: constant time -- no recursive call on the tail. *)
let rec mins : int = function
  | Elt a -> $b1 a
  | Cons (a, l) -> $b2 a

synthesize mins equiv lmin requires sorted
)";

int main() {
  std::printf("Loading the 'mins on sorted lists' problem...\n");
  auto P = std::make_shared<const Problem>(loadProblem(Source));

  SynthesisTask Task(P, AlgorithmKind::SE2GIS);
  SolverConfig Config;
  Config.Algo.TimeoutMs = 30000;
  std::printf("Running SE2GIS...\n");
  Outcome R = Task.run(Config);

  std::printf("verdict: %s  (%.1f ms, steps: %s)\n", verdictName(R.V),
              R.Stats.ElapsedMs, R.Stats.Steps.c_str());
  if (R.V == Verdict::Realizable) {
    std::printf("solution%s:\n%s",
                R.Stats.SolutionProvedInductive ? " (proved by induction)"
                                                : " (bounded check)",
                solutionToString(*P, R.Solution).c_str());
    std::printf("invariants inferred: %d datatype, %d reference\n",
                R.Stats.DatatypeInvariants, R.Stats.ImageInvariants);
  } else {
    std::printf("detail: %s\n", R.Detail.c_str());
  }
  return R.V == Verdict::Realizable ? 0 : 1;
}
