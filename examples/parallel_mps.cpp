//===- parallel_mps.cpp - Divide-and-conquer parallelization ---------------===//
///
/// \file
/// Synthesizes the divide-and-conquer join for the maximum-prefix-sum
/// problem: the reference folds over a cons-list; the target recurses over a
/// concat-list (segments that could be processed in parallel), connected by
/// a fold-style representation function. The well-known join
///     (s1, m1) ⊕ (s2, m2) = (s1 + s2, max(m1, s1 + m2))
/// should come out, given the `ensures` hint on the reference's image.
///
/// Build & run:  ./build/examples/parallel_mps
///
//===----------------------------------------------------------------------===//

#include "core/Algorithms.h"
#include "eval/Interp.h"
#include "frontend/Elaborate.h"

#include <cstdio>

using namespace se2gis;

static const char *Source = R"(
type clist = Single of int | Concat of clist * clist
type list = Elt of int | Cons of int * list

(* Reference: (sum, maximum prefix sum) over a cons-list. *)
let rec mps = function
  | Elt a -> (a, max a 0)
  | Cons (a, l) ->
    let s, m = mps l in
    (a + s, max 0 (a + m))

(* The mps component dominates the sum and is non-negative. *)
let epost (p : int * int) = let s, m = p in m >= 0 && m >= s

(* Representation: flatten a concat-list into a cons-list. *)
let rec repr = function
  | Single a -> Elt a
  | Concat (x, y) -> app (repr y) x
and app (l : list) = function
  | Single a -> Cons (a, l)
  | Concat (x, y) -> app (app l y) x

(* Target: a divide-and-conquer traversal. *)
let rec par : int * int = function
  | Single a -> $s0 a
  | Concat (x, y) -> $join (par x) (par y)

synthesize par equiv mps via repr ensures epost
)";

int main() {
  Problem P = loadProblem(Source);
  AlgoOptions Opts;
  Opts.TimeoutMs = 60000;
  std::printf("Synthesizing the parallel mps join...\n");
  Outcome R = runSE2GIS(P, Opts);
  std::printf("outcome: %s (%.1f ms)\n", verdictName(R.V),
              R.Stats.ElapsedMs);
  if (R.V != Verdict::Realizable) {
    std::printf("detail: %s\n", R.Detail.c_str());
    return 1;
  }
  std::printf("%s", solutionToString(P, R.Solution).c_str());

  // Evaluate the synthesized divide-and-conquer program on a concat tree of
  // the segments [3,-4] ++ [2,-1,5] and compare with the sequential fold.
  const ConstructorDecl *Single = P.Theta->findConstructor("Single");
  const ConstructorDecl *Concat = P.Theta->findConstructor("Concat");
  auto S = [&](long long V) {
    return Value::mkData(Single, {Value::mkInt(V)});
  };
  auto C = [&](ValuePtr A, ValuePtr B) {
    return Value::mkData(Concat, {A, B});
  };
  ValuePtr T = C(C(S(3), S(-4)), C(S(2), C(S(-1), S(5))));

  Interpreter I(*P.Prog);
  I.bindUnknowns(&R.Solution);
  ValuePtr Par = I.call("par", {T});
  ValuePtr Flat = I.call("repr", {T});
  ValuePtr Ref = I.call("mps", {Flat});
  std::printf("segments flattened: %s\n", Flat->str().c_str());
  std::printf("parallel result %s, sequential result %s -> %s\n",
              Par->str().c_str(), Ref->str().c_str(),
              valueEquals(Par, Ref) ? "agree" : "MISMATCH");
  return valueEquals(Par, Ref) ? 0 : 1;
}
