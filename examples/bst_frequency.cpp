//===- bst_frequency.cpp - The §2 motivating example ------------------------===//
///
/// \file
/// Ports `frequency` from arbitrary trees to binary search trees using the
/// repaired recursion skeleton of Fig. 2(c), then checks the synthesized
/// functions against the reference on concrete BSTs.
///
/// Build & run:  ./build/examples/bst_frequency
///
//===----------------------------------------------------------------------===//

#include "core/Algorithms.h"
#include "eval/Interp.h"
#include "frontend/Elaborate.h"

#include <cstdio>

using namespace se2gis;

static const char *Source = R"(
type tree = Leaf of int | Node of int * tree * tree

(* BST invariant: left subtree strictly below the label, right at or above. *)
let rec bst = function
  | Leaf a -> true
  | Node (a, l, r) -> alllt a l && allgeq a r && bst l && bst r
and alllt (v : int) = function
  | Leaf a -> a < v
  | Node (a, l, r) -> a < v && alllt v l && alllt v r
and allgeq (v : int) = function
  | Leaf a -> a >= v
  | Node (a, l, r) -> a >= v && allgeq v l && allgeq v r

(* Reference: count occurrences of x anywhere in the tree. *)
let rec freq (x : int) = function
  | Leaf a -> if a = x then 1 else 0
  | Node (a, l, r) -> freq x l + freq x r + (if a = x then 1 else 0)

(* The repaired skeleton (Fig. 2(c)): skip the left subtree when a < x. *)
let rec tfreq (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tfreq x r)
    else $u2 x a (tfreq x r) (tfreq x l)

synthesize tfreq equiv freq requires bst
)";

int main() {
  Problem P = loadProblem(Source);
  AlgoOptions Opts;
  Opts.TimeoutMs = 60000;
  std::printf("Synthesizing frequency on binary search trees...\n");
  Outcome R = runSE2GIS(P, Opts);
  std::printf("outcome: %s (%.1f ms, steps %s)\n", verdictName(R.V),
              R.Stats.ElapsedMs, R.Stats.Steps.c_str());
  if (R.V != Verdict::Realizable) {
    std::printf("detail: %s\n", R.Detail.c_str());
    return 1;
  }
  std::printf("%s", solutionToString(P, R.Solution).c_str());

  // Cross-check against the reference on a concrete BST with duplicates:
  // Node(5, Node(2, 1, 3), Node(7, 5, 9)) — the label 5 appears twice.
  const ConstructorDecl *Leaf = P.Theta->findConstructor("Leaf");
  const ConstructorDecl *Node = P.Theta->findConstructor("Node");
  auto L = [&](long long V) {
    return Value::mkData(Leaf, {Value::mkInt(V)});
  };
  auto N = [&](long long V, ValuePtr A, ValuePtr B) {
    return Value::mkData(Node, {Value::mkInt(V), A, B});
  };
  ValuePtr T = N(5, N(2, L(1), L(3)), N(7, L(5), L(9)));

  Interpreter I(*P.Prog);
  I.bindUnknowns(&R.Solution);
  bool AllMatch = true;
  for (long long X = 0; X <= 10; ++X) {
    long long Expect = I.call("freq", {Value::mkInt(X), T})->getInt();
    long long Got = I.call("tfreq", {Value::mkInt(X), T})->getInt();
    if (Expect != Got)
      AllMatch = false;
    std::printf("  freq %2lld -> reference %lld, synthesized %lld%s\n", X,
                Expect, Got, Expect == Got ? "" : "  MISMATCH");
  }
  std::printf(AllMatch ? "all queries agree\n" : "MISMATCH detected\n");
  return AllMatch ? 0 : 1;
}
