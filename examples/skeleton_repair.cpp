//===- skeleton_repair.cpp - Witness-guided skeleton repair -----------------===//
///
/// \file
/// Walks through the §2 interaction: a programmer writes a wrong recursion
/// skeleton, the tool declares it unrealizable and prints a witness (two
/// assignments demonstrating that no function can satisfy the
/// specification), the programmer repairs the skeleton guided by the
/// witness, and after two repairs synthesis succeeds. The three skeletons
/// are exactly Fig. 2(b), the step-(1) intermediate, and Fig. 2(c).
///
/// Build & run:  ./build/examples/skeleton_repair
///
//===----------------------------------------------------------------------===//

#include "core/Algorithms.h"
#include "frontend/Elaborate.h"

#include <cstdio>
#include <string>

using namespace se2gis;

namespace {

const char *Prelude = R"(
type tree = Leaf of int | Node of int * tree * tree

let rec bst = function
  | Leaf a -> true
  | Node (a, l, r) -> alllt a l && allgeq a r && bst l && bst r
and alllt (v : int) = function
  | Leaf a -> a < v
  | Node (a, l, r) -> a < v && alllt v l && alllt v r
and allgeq (v : int) = function
  | Leaf a -> a >= v
  | Node (a, l, r) -> a >= v && allgeq v l && allgeq v r

let rec freq (x : int) = function
  | Leaf a -> if a = x then 1 else 0
  | Node (a, l, r) -> freq x l + freq x r + (if a = x then 1 else 0)
)";

Verdict attempt(const char *Label, const char *Skeleton) {
  std::printf("\n--- %s ---\n%s\n", Label, Skeleton);
  Problem P = loadProblem(std::string(Prelude) + Skeleton +
                          "\nsynthesize tfreq equiv freq requires bst\n");
  AlgoOptions Opts;
  Opts.TimeoutMs = 60000;
  Outcome R = runSE2GIS(P, Opts);
  std::printf("=> %s (%.1f ms)\n", verdictName(R.V), R.Stats.ElapsedMs);
  if (R.V == Verdict::Unrealizable)
    std::printf("   %s\n", R.Detail.c_str());
  if (R.V == Verdict::Realizable)
    std::printf("%s", solutionToString(P, R.Solution).c_str());
  return R.V;
}

} // namespace

int main() {
  std::printf("Witness-guided repair of a frequency skeleton on BSTs "
              "(paper §2).\n");

  Verdict O1 = attempt("Attempt 1: Fig. 2(b), both recursions misplaced",
                       R"(let rec tfreq (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tfreq x l)
    else $u2 x a (tfreq x r))");

  Verdict O2 = attempt("Attempt 2: step (1) — u1 now recurses right; u2 "
                       "still misses g(l)",
                       R"(let rec tfreq (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tfreq x r)
    else $u2 x a (tfreq x r))");

  Verdict O3 = attempt("Attempt 3: Fig. 2(c) — the repaired skeleton",
                       R"(let rec tfreq (x : int) : int = function
  | Leaf a -> $u0 x a
  | Node (a, l, r) ->
    if a < x then $u1 (tfreq x r)
    else $u2 x a (tfreq x r) (tfreq x l))");

  bool AsExpected = O1 == Verdict::Unrealizable &&
                    O2 == Verdict::Unrealizable &&
                    O3 == Verdict::Realizable;
  std::printf("\nrepair narrative %s\n",
              AsExpected ? "reproduced (unrealizable, unrealizable, "
                           "realizable)"
                         : "DID NOT match the paper");
  return AsExpected ? 0 : 1;
}
